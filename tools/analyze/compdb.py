"""Translation-unit discovery for the analyzer.

Primary driver is a CMake-exported compile_commands.json: its entries are
the ground truth for which sources actually build (so generated or
dead-configured files never pollute the dead-code pass).  Headers do not
appear in a compilation database, so the project's headers are collected
by scanning the same roots the build covers.

A `--root` fallback scans a directory tree directly; fixture tests and
pre-configure runs use it.
"""

from __future__ import annotations

import json
from pathlib import Path

SOURCE_SUFFIXES = (".cc", ".cpp", ".cxx")
HEADER_SUFFIXES = (".h", ".hh", ".hpp")

# Directory roots (relative to the repo root) that make up the analysis
# universe.  src/ carries the layered modules; the rest are reference
# roots: their uses keep src/ symbols alive for the dead-code pass.
LAYERED_ROOT = "src"
REFERENCE_ROOTS = ("tests", "bench", "examples", "tools")


class SourceUniverse:
    """Every file the analyzer reads, with repo-relative paths."""

    def __init__(self, root: Path):
        self.root = root.resolve()
        self.files: dict[str, str] = {}  # rel path -> text

    def add(self, path: Path) -> None:
        path = path.resolve()
        if not path.is_relative_to(self.root):
            return
        rel = path.relative_to(self.root).as_posix()
        if rel in self.files:
            return
        try:
            self.files[rel] = path.read_text(errors="replace")
        except OSError:
            pass

    def module_of(self, rel: str) -> str | None:
        """Layer module name for src/<module>/... paths, else None."""
        parts = rel.split("/")
        if len(parts) >= 3 and parts[0] == LAYERED_ROOT:
            return parts[1]
        return None

    def headers(self) -> list[str]:
        return sorted(p for p in self.files if p.endswith(HEADER_SUFFIXES))

    def sources(self) -> list[str]:
        return sorted(p for p in self.files if p.endswith(SOURCE_SUFFIXES))


def _scan_headers(universe: SourceUniverse, roots: list[Path]) -> None:
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in HEADER_SUFFIXES + SOURCE_SUFFIXES:
                universe.add(path)


def load_from_compdb(compdb_path: Path, repo_root: Path) -> SourceUniverse:
    """Universe = compdb TUs + all headers/sources under the known roots.

    The compdb tells us the build is real (and is required so the analyzer
    only ever runs against a configured tree), but headers and
    non-compiled helpers still come from the filesystem scan.
    """
    universe = SourceUniverse(repo_root)
    entries = json.loads(compdb_path.read_text())
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{compdb_path}: not a compilation database")
    for entry in entries:
        directory = Path(entry.get("directory", "."))
        file_path = Path(entry["file"])
        if not file_path.is_absolute():
            file_path = directory / file_path
        universe.add(file_path)
    roots = [repo_root / LAYERED_ROOT]
    roots += [repo_root / r for r in REFERENCE_ROOTS]
    _scan_headers(universe, roots)
    return universe


def load_from_root(root: Path) -> SourceUniverse:
    """Fixture/fallback mode: every .cc/.h under `root` is the universe."""
    universe = SourceUniverse(root)
    _scan_headers(universe, [root])
    return universe
