// Fatal runtime invariant checks (CHECK) and debug-only checks (DCHECK).
//
// CHECK(cond) aborts the process through util/logging when `cond` is false;
// it is always on, in every build type, and is the repo's replacement for
// assert() (the linter rejects assert() in src/).  The macros stream extra
// context like the logger does:
//
//   CHECK(shards > 0) << "ShardedIustitia needs at least one shard";
//   CHECK_LT(index, shards_.size());
//   CHECK_NEAR(prob_sum, 1.0, 1e-9) << "distribution not normalized";
//
// DCHECK and friends compile to nothing when IUSTITIA_DCHECK_IS_ON is 0
// (operands are not evaluated), so they are safe on hot paths.  DCHECKs are
// on when NDEBUG is unset or when the build defines IUSTITIA_DCHECK_ALWAYS_ON
// (the default of the IUSTITIA_DCHECKS CMake option, so the standard
// RelWithDebInfo build still exercises them; benchmarking configurations can
// pass -DIUSTITIA_DCHECKS=OFF).
#ifndef IUSTITIA_UTIL_CHECK_H_
#define IUSTITIA_UTIL_CHECK_H_

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

namespace iustitia::util {

namespace internal {

// Accumulates the failure message; the destructor reports it through
// util/logging and aborts.  Only ever constructed on the failure path.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* message);
  ~CheckFailure();  // [[noreturn]] in effect: ends in std::abort()
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows streamed operands of compiled-out DCHECKs.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Builds "CHECK failed: <expr> (<lhs> vs <rhs>)" for a failed comparison;
// returns nullptr on success so the macro below can test it.  Operands are
// evaluated exactly once.
#define IUSTITIA_DEFINE_CHECK_OP_IMPL(name, op)                             \
  template <typename L, typename R>                                         \
  std::unique_ptr<std::string> name(const L& lhs, const R& rhs,             \
                                    const char* expr) {                     \
    if (lhs op rhs) return nullptr;                                         \
    std::ostringstream os;                                                  \
    os << "CHECK failed: " << expr << " (" << lhs << " vs " << rhs << ")";  \
    return std::make_unique<std::string>(os.str());                         \
  }
IUSTITIA_DEFINE_CHECK_OP_IMPL(CheckEqImpl, ==)
IUSTITIA_DEFINE_CHECK_OP_IMPL(CheckNeImpl, !=)
IUSTITIA_DEFINE_CHECK_OP_IMPL(CheckLtImpl, <)
IUSTITIA_DEFINE_CHECK_OP_IMPL(CheckLeImpl, <=)
IUSTITIA_DEFINE_CHECK_OP_IMPL(CheckGtImpl, >)
IUSTITIA_DEFINE_CHECK_OP_IMPL(CheckGeImpl, >=)
#undef IUSTITIA_DEFINE_CHECK_OP_IMPL

template <typename L, typename R, typename T>
std::unique_ptr<std::string> CheckNearImpl(const L& lhs, const R& rhs,
                                           const T& tolerance,
                                           const char* expr) {
  const double delta =
      std::fabs(static_cast<double>(lhs) - static_cast<double>(rhs));
  if (delta <= static_cast<double>(tolerance)) return nullptr;
  std::ostringstream os;
  os << "CHECK failed: " << expr << " (" << lhs << " vs " << rhs
     << ", |delta| = " << delta << " > " << tolerance << ")";
  return std::make_unique<std::string>(os.str());
}

}  // namespace internal

// True when DCHECK-family macros are live in this translation unit.
#if !defined(NDEBUG) || defined(IUSTITIA_DCHECK_ALWAYS_ON)
#define IUSTITIA_DCHECK_IS_ON 1
inline constexpr bool kDCheckEnabled = true;
#else
#define IUSTITIA_DCHECK_IS_ON 0
inline constexpr bool kDCheckEnabled = false;
#endif

}  // namespace iustitia::util

// The `while` form makes every macro a single statement that accepts a
// trailing `<< message` chain; the failure object's destructor aborts, so
// the loop body runs at most once.
#define CHECK(condition)                                      \
  while (!(condition))                                        \
  ::iustitia::util::internal::CheckFailure(                   \
      __FILE__, __LINE__, "CHECK failed: " #condition)        \
      .stream()

#define IUSTITIA_CHECK_OP(impl, lhs, rhs, expr)                         \
  while (auto iustitia_check_result =                                   \
             ::iustitia::util::internal::impl((lhs), (rhs), expr))      \
  ::iustitia::util::internal::CheckFailure(                             \
      __FILE__, __LINE__, iustitia_check_result->c_str())               \
      .stream()

#define CHECK_EQ(lhs, rhs) \
  IUSTITIA_CHECK_OP(CheckEqImpl, lhs, rhs, #lhs " == " #rhs)
#define CHECK_NE(lhs, rhs) \
  IUSTITIA_CHECK_OP(CheckNeImpl, lhs, rhs, #lhs " != " #rhs)
#define CHECK_LT(lhs, rhs) \
  IUSTITIA_CHECK_OP(CheckLtImpl, lhs, rhs, #lhs " < " #rhs)
#define CHECK_LE(lhs, rhs) \
  IUSTITIA_CHECK_OP(CheckLeImpl, lhs, rhs, #lhs " <= " #rhs)
#define CHECK_GT(lhs, rhs) \
  IUSTITIA_CHECK_OP(CheckGtImpl, lhs, rhs, #lhs " > " #rhs)
#define CHECK_GE(lhs, rhs) \
  IUSTITIA_CHECK_OP(CheckGeImpl, lhs, rhs, #lhs " >= " #rhs)

#define CHECK_NEAR(lhs, rhs, tolerance)                                 \
  while (auto iustitia_check_result =                                   \
             ::iustitia::util::internal::CheckNearImpl(                 \
                 (lhs), (rhs), (tolerance),                             \
                 "|" #lhs " - " #rhs "| <= " #tolerance))               \
  ::iustitia::util::internal::CheckFailure(                             \
      __FILE__, __LINE__, iustitia_check_result->c_str())               \
      .stream()

#if IUSTITIA_DCHECK_IS_ON
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(lhs, rhs) CHECK_EQ(lhs, rhs)
#define DCHECK_NE(lhs, rhs) CHECK_NE(lhs, rhs)
#define DCHECK_LT(lhs, rhs) CHECK_LT(lhs, rhs)
#define DCHECK_LE(lhs, rhs) CHECK_LE(lhs, rhs)
#define DCHECK_GT(lhs, rhs) CHECK_GT(lhs, rhs)
#define DCHECK_GE(lhs, rhs) CHECK_GE(lhs, rhs)
#define DCHECK_NEAR(lhs, rhs, tolerance) CHECK_NEAR(lhs, rhs, tolerance)
#else
// Compiled out: operands are never evaluated, but stay visible to the
// compiler so variables used only in DCHECKs do not become "unused".
#define IUSTITIA_DCHECK_NOP(condition) \
  while (false && (condition)) ::iustitia::util::internal::NullStream()
#define DCHECK(condition) IUSTITIA_DCHECK_NOP(condition)
#define DCHECK_EQ(lhs, rhs) IUSTITIA_DCHECK_NOP((lhs) == (rhs))
#define DCHECK_NE(lhs, rhs) IUSTITIA_DCHECK_NOP((lhs) != (rhs))
#define DCHECK_LT(lhs, rhs) IUSTITIA_DCHECK_NOP((lhs) < (rhs))
#define DCHECK_LE(lhs, rhs) IUSTITIA_DCHECK_NOP((lhs) <= (rhs))
#define DCHECK_GT(lhs, rhs) IUSTITIA_DCHECK_NOP((lhs) > (rhs))
#define DCHECK_GE(lhs, rhs) IUSTITIA_DCHECK_NOP((lhs) >= (rhs))
#define DCHECK_NEAR(lhs, rhs, tolerance) \
  IUSTITIA_DCHECK_NOP((lhs) == (rhs) && (tolerance) == (tolerance))
#endif

#endif  // IUSTITIA_UTIL_CHECK_H_
