// SHA-1 correctness against the FIPS 180-2 example vectors, plus the
// incremental-update and non-destructive-digest contracts.
#include "util/sha1.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

namespace iustitia::util {
namespace {

TEST(Sha1, EmptyString) {
  EXPECT_EQ(sha1("").hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, FipsVectorAbc) {
  EXPECT_EQ(sha1("abc").hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, FipsVectorTwoBlocks) {
  EXPECT_EQ(
      sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.digest().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string data = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha1 h;
    h.update(data.substr(0, split));
    h.update(data.substr(split));
    ASSERT_EQ(h.digest(), sha1(data)) << "split at " << split;
  }
}

TEST(Sha1, DigestDoesNotDisturbState) {
  Sha1 h;
  h.update("hello ");
  const Sha1Digest mid = h.digest();
  EXPECT_EQ(mid, sha1("hello "));
  h.update("world");
  EXPECT_EQ(h.digest(), sha1("hello world"));
}

TEST(Sha1, ResetRestoresInitialState) {
  Sha1 h;
  h.update("garbage");
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.digest().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// The one-shot sha1() special-cases messages of <= 55 bytes into a
// single stack-built padded block (the flow-id shape).  Every length
// through the cutoff — plus the first length past it — must agree with
// the incremental path, which never takes the fast path.
TEST(Sha1, OneShotFastPathMatchesIncrementalAtEveryLength) {
  std::string data;
  for (std::size_t len = 0; len <= 56; ++len) {
    Sha1 h;
    h.update(data);
    ASSERT_EQ(sha1(data), h.digest()) << "len " << len;
    data.push_back(static_cast<char>('A' + len % 26));
  }
}

TEST(Sha1, BoundaryLengthsAroundBlockSize) {
  // Exercise padding around the 64-byte block boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string data(len, 'x');
    Sha1 split_hash;
    split_hash.update(data.substr(0, len / 2));
    split_hash.update(data.substr(len / 2));
    ASSERT_EQ(split_hash.digest(), sha1(data)) << "len " << len;
  }
}

TEST(Sha1Digest, Prefix64IsBigEndianPrefix) {
  Sha1Digest d;
  for (std::size_t i = 0; i < d.bytes.size(); ++i) {
    d.bytes[i] = static_cast<std::uint8_t>(i + 1);
  }
  EXPECT_EQ(d.prefix64(), 0x0102030405060708ULL);
}

TEST(Sha1Digest, HexIsFortyLowercaseChars) {
  const std::string hex = sha1("xyz").hex();
  EXPECT_EQ(hex.size(), 40u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(Sha1Digest, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha1("flow-a"), sha1("flow-b"));
  EXPECT_NE(sha1("flow-a").prefix64(), sha1("flow-b").prefix64());
}

TEST(Sha1Digest, UsableAsUnorderedMapKey) {
  std::unordered_map<Sha1Digest, int> map;
  map[sha1("a")] = 1;
  map[sha1("b")] = 2;
  EXPECT_EQ(map.at(sha1("a")), 1);
  EXPECT_EQ(map.at(sha1("b")), 2);
}

}  // namespace
}  // namespace iustitia::util
