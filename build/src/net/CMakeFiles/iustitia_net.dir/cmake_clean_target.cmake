file(REMOVE_RECURSE
  "libiustitia_net.a"
)
