# Empty dependencies file for test_model_selection.
# This may be replaced when dependencies are built.
