#!/usr/bin/env python3
"""Asserts runtime-observed lock-order graphs ⊆ the static graph.

Usage:
    tools/check_lock_graph.py STATIC_GRAPH OBSERVED...

STATIC_GRAPH is the JSON written by `tools/analyze --lock-graph-out`.
Each OBSERVED argument is either a lock_graph.<pid>.json written by an
IUSTITIA_DEADLOCK_DEBUG build at process exit (env var
IUSTITIA_LOCK_GRAPH_OUT names the directory), or a directory that is
scanned for lock_graph.*.json files.

An observed edge "held A, then acquired B" that the static lockorder
pass never derived means the static model under-approximates real
executions — either a lock expression it could not resolve, or a call
path it does not see.  That breaks the deadlock-detection story, so the
check fails (exit 1) and prints the missing edges.

Edges involving unnamed mutexes ("<anon>") are ignored: they have no
static identity to compare against.  Self-edges never occur (the
runtime registry drops same-name pairs).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load_edges(path: Path) -> set[tuple[str, str]]:
    doc = json.loads(path.read_text())
    return {(e["from"], e["to"]) for e in doc.get("edges", [])}


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    static_path = Path(argv[0])
    if not static_path.exists():
        print(f"check_lock_graph: missing static graph {static_path}",
              file=sys.stderr)
        return 2
    static_edges = load_edges(static_path)

    observed_files: list[Path] = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            observed_files.extend(sorted(p.glob("lock_graph.*.json")))
        elif p.exists():
            observed_files.append(p)
        else:
            print(f"check_lock_graph: missing observed graph {p}",
                  file=sys.stderr)
            return 2
    if not observed_files:
        print("check_lock_graph: no observed graphs found (did the "
              "deadlock-debug run set IUSTITIA_LOCK_GRAPH_OUT?)",
              file=sys.stderr)
        return 2

    missing: dict[tuple[str, str], list[str]] = {}
    total_observed = 0
    for path in observed_files:
        for edge in load_edges(path):
            if "<anon>" in edge:
                continue
            total_observed += 1
            if edge not in static_edges:
                missing.setdefault(edge, []).append(path.name)

    if missing:
        print(f"check_lock_graph: {len(missing)} observed lock-order "
              f"edge(s) missing from the static graph {static_path}:",
              file=sys.stderr)
        for (src, dst), files in sorted(missing.items()):
            print(f"  {src} -> {dst}   (seen in {', '.join(files)})",
                  file=sys.stderr)
        print("the lockorder pass under-approximates these executions; "
              "teach it the lock site or name the mutex differently",
              file=sys.stderr)
        return 1

    print(f"check_lock_graph: OK — {total_observed} observed edge "
          f"instance(s) across {len(observed_files)} graph(s), all "
          f"within the {len(static_edges)}-edge static graph")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
