// Bounded lock-free single-producer/single-consumer ring.
//
// The serving runtime's transport between the dispatcher and one pinned
// shard worker: exactly one thread pushes, exactly one thread pops, so the
// ring needs no locks and no CAS loops — one release store per side.  The
// producer and consumer indices live on separate cache lines (no false
// sharing), and each side keeps a plain-field cached copy of the other
// side's index so the common case touches only memory it already owns
// (the shared atomic is re-read only when the cache says full/empty).
//
// Both sides come in single-item (try_push/try_pop) and burst
// (try_push_burst/try_pop_burst) flavors.  A burst moves up to N items
// under ONE head/tail load+store pair, so the per-item synchronization
// cost — the acquire reload of the peer's cursor and the release
// publish of our own — is amortized across the whole batch (see
// DESIGN.md §10, burst protocol).
//
// Shutdown is a poison pill carried out of band: the producer calls
// close() after its final push, and the consumer terminates on a
// try_pop() that fails AFTER closed() was observed — the acquire load of
// closed_ pairs with the release store, so once the flag is seen the
// producer's final push is guaranteed visible to the next pop, and an
// empty ring at that point is genuinely the end of the stream.
#ifndef IUSTITIA_RUNTIME_SPSC_RING_H_
#define IUSTITIA_RUNTIME_SPSC_RING_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/check.h"

namespace iustitia::runtime {

// Sized to the ubiquitous 64-byte line; 128 would also cover adjacent-line
// prefetchers at twice the footprint, which this workload does not need.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2) so index
  // wrapping is a mask, not a division.
  explicit SpscRing(std::size_t min_capacity)
      : mask_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity) -
              1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side.  Moves `value` in and returns true, or returns false
  // (value untouched) when the ring is full.  Must not be called after
  // close().  One relaxed load, one slot move, one release store: no
  // heap, no locks, no waits.
  // analyze: hotpath
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    DCHECK(!closed_.load(std::memory_order_relaxed))
        << "push after close() breaks the drain contract";
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.  Moves the oldest element into `out` and returns true,
  // or returns false when the ring is empty.  Same real-time contract as
  // try_push.
  // analyze: hotpath
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Producer side, batched: moves up to values.size() items in FIFO
  // order and returns how many fit (0 when the ring is full).  Consumed
  // items are left moved-from; the unpushed tail of `values` is
  // untouched, so the caller can retry exactly the remainder.  The whole
  // burst costs the same synchronization as ONE try_push — at most one
  // acquire reload of the head and exactly one release store of the tail
  // — which is what amortizes the cross-core cache traffic when the
  // dispatcher flushes a staging buffer.  Same close() contract as
  // try_push: must not be called after close().
  // analyze: hotpath
  std::size_t try_push_burst(std::span<T> values) {
    if (values.empty()) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t space = capacity() - (tail - cached_head_);
    if (space < values.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      space = capacity() - (tail - cached_head_);
      if (space == 0) return 0;
    }
    DCHECK(!closed_.load(std::memory_order_relaxed))
        << "push after close() breaks the drain contract";
    const std::size_t n = std::min(values.size(), space);
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(values[i]);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  // Consumer side, batched: moves up to out.size() oldest items into the
  // front of `out` and returns how many arrived (0 when the ring is
  // empty).  One acquire reload of the tail at most, one release store
  // of the head total — the consumer half of the burst protocol.  The
  // close()/drain termination protocol is unchanged: a 0 return *after*
  // closed() was observed proves exhaustion, exactly like a failed
  // try_pop.
  // analyze: hotpath
  std::size_t try_pop_burst(std::span<T> out) {
    if (out.empty()) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - head;
    if (avail < out.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n = std::min(out.size(), avail);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  // Producer side: marks the stream complete.  Consumer termination
  // protocol: observe closed() == true, then keep popping until try_pop()
  // fails — only a failure *after* the flag was seen proves the ring is
  // drained (a pop failure from before the flag may simply have raced the
  // final push).
  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // Callable from any thread; exact only when both sides are quiescent.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;

  // Consumer-owned line: pop cursor plus its cached view of the tail.
  // Release stores publish slot writes; the owning side may re-read its
  // own cursor relaxed (no cross-thread data rides on that load).
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};  // analyze: atomic(publish)
  std::size_t cached_tail_ = 0;

  // Producer-owned line: push cursor plus its cached view of the head.
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};  // analyze: atomic(publish)
  std::size_t cached_head_ = 0;

  alignas(kCacheLineBytes) std::atomic<bool> closed_{false};  // analyze: atomic(publish)
};

}  // namespace iustitia::runtime

#endif  // IUSTITIA_RUNTIME_SPSC_RING_H_
