// Wall-clock stopwatch for the timing experiments (Fig. 5, Table 3).
#ifndef IUSTITIA_UTIL_TIMER_H_
#define IUSTITIA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace iustitia::util {

// Steady-clock stopwatch with microsecond resolution reporting.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  // Elapsed time since construction or the last reset().
  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_micros() const noexcept { return elapsed_seconds() * 1e6; }
  double elapsed_millis() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Two back-to-back intervals measured with THREE clock reads instead of
// the four that a pair of Stopwatches costs: construction starts the
// first interval, mark() ends it and starts the second, second_micros()
// ends the second.  On a hot path that times adjacent stages (e.g. the
// engine's tau_hash / tau_CDBsearch brackets) the shared middle read is
// a measurable saving — a steady_clock read is tens of nanoseconds.
class SplitStopwatch {
 public:
  SplitStopwatch() noexcept : start_(Clock::now()), mark_(start_) {}

  // Ends the first interval and starts the second (one clock read).
  void mark() noexcept { mark_ = Clock::now(); }

  // First interval: construction to mark().  Pure arithmetic, no read.
  double first_micros() const noexcept {
    return std::chrono::duration<double>(mark_ - start_).count() * 1e6;
  }

  // Second interval: mark() to now (one clock read).
  double second_micros() const noexcept {
    return std::chrono::duration<double>(Clock::now() - mark_).count() * 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point mark_;
};

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_TIMER_H_
