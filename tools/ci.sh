#!/usr/bin/env bash
# Pre-merge gate: the full ctest matrix under every sanitizer preset, the
# repo lint + analyze passes, the deadlock-debug and rt-debug
# cross-checks, and the perf smoke.  Maps onto tier-1 verify as follows:
# the `default` preset IS the tier-1 build/test command (same binary dir,
# same cache), so a green ci.sh implies a green tier-1 run.
#
# Usage: tools/ci.sh [preset ...]
#   With no arguments runs: default, asan-ubsan, tsan, then the tool stages.
#   With arguments runs only the named configure/build/test presets.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("$@")
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(default asan-ubsan tsan)
fi

# Per-stage wall time: stage NAME marks a boundary, the summary at the
# bottom prints one line per stage so a slow gate names its stage.
stage_names=()
stage_secs=()
current_stage=""
stage_start=0
end_stage() {
  if [[ -n "$current_stage" ]]; then
    stage_names+=("$current_stage")
    stage_secs+=($((SECONDS - stage_start)))
  fi
  current_stage=""
}
stage() {
  end_stage
  current_stage="$1"
  stage_start=$SECONDS
  echo "==== $1"
}
print_stage_times() {
  end_stage
  echo "---- stage wall times"
  local i
  for i in "${!stage_names[@]}"; do
    printf '%6ss  %s\n' "${stage_secs[$i]}" "${stage_names[$i]}"
  done
}
trap print_stage_times EXIT

for preset in "${presets[@]}"; do
  stage "[$preset] configure+build+test"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

stage "lint"
# The tool stages run directly instead of through `cmake --build --target`:
# each cmake invocation re-checks the generate step, which can regenerate
# compile_commands.json mid-gate.  The database exported by the `default`
# configure above serves every later stage unchanged (analyze here,
# and the rt-debug stage's analyzer re-run below).
compdb="build/compile_commands.json"
[[ -f "$compdb" ]] || {
  echo "ci.sh: $compdb missing — run the default preset first" >&2
  exit 1
}
python3 tools/lint.py

stage "analyze"
# Baseline-gated: exits nonzero only on findings not in
# tools/analyze-baseline.json (see tools/README.md for the workflow).
# Also exports the static lock-order graph the deadlock-debug stage
# checks runtime executions against.
python3 tools/analyze --compdb "$compdb" \
  --baseline tools/analyze-baseline.json \
  --sarif-out build/analyze.sarif \
  --lock-graph-out build/lock_graph_static.json

stage "deadlock-debug"
# Instrumented util::Mutex: FATALs on a runtime lock-order inversion and
# records every observed edge.  The concurrency suites run with graph
# capture on, then the observed graph must be a subgraph of the static
# one — an edge the analyzer failed to model fails the gate.
cmake --preset deadlock-debug
cmake --build --preset deadlock-debug -j "$jobs"
# Absolute: ctest runs each test from its own binary dir, and the graph
# writer resolves the path from the test's cwd.
graph_dir="$PWD/build-deadlock/lock-graphs"
rm -rf "$graph_dir"
mkdir -p "$graph_dir"
IUSTITIA_LOCK_GRAPH_OUT="$graph_dir" ctest --preset deadlock-debug \
  -j "$jobs" -R 'test_runtime|test_concurrency_stress'
# The detector's own unit tests use synthetic mutexes that must NOT land
# in the comparison, so they run without graph capture.
ctest --preset deadlock-debug -R test_deadlock_debug

python3 tools/check_lock_graph.py build/lock_graph_static.json "$graph_dir"

stage "rt-debug"
# Runtime twin of the analyzer's hotpath pass: replacement operator
# new/delete and instrumented util::Mutex abort the process on any heap
# or blocking call inside a util::rt::GuardRegion without a matching
# AllowScope.  The hotpath pass in the analyze stage above proves the
# static claims (no effects outside `// analyze: hotpath-allow` lines);
# this stage proves the observed behavior is a subset of those claims —
# a replay that allocates where the analyzer saw no allocation aborts
# and fails the gate.  The static pass already ran against the shared
# compile_commands.json; only the instrumented binaries build here.
cmake --preset rt-debug
cmake --build --preset rt-debug -j "$jobs"
ctest --preset rt-debug -j "$jobs" -R 'test_rt_debug|test_runtime'
# End-to-end serve under live guards: train a small model, generate a
# trace, replay it through the sharded runtime in both backpressure
# modes — the blocking run with burst batching on, so the staging
# buffers, ring burst push/pop, and batched output handoff all execute
# inside guard regions.  Any undeclared hot-loop allocation FATALs the
# replay.
rt_dir="$PWD/build-rtdebug/rt-smoke"
rm -rf "$rt_dir"
mkdir -p "$rt_dir"
./build-rtdebug/tools/iustitia gen-corpus "$rt_dir/corpus" --files 8 --seed 7
./build-rtdebug/tools/iustitia train "$rt_dir/corpus" "$rt_dir/model.bin"
./build-rtdebug/tools/iustitia gen-trace "$rt_dir/trace.pcap" \
  --packets 20000 --seed 11
./build-rtdebug/tools/iustitia replay "$rt_dir/model.bin" \
  "$rt_dir/trace.pcap" --shards 2 --burst 16 --backpressure block --json \
  > "$rt_dir/replay_block.json"
./build-rtdebug/tools/iustitia replay "$rt_dir/model.bin" \
  "$rt_dir/trace.pcap" --shards 2 --backpressure drop --json \
  > "$rt_dir/replay_drop.json"

stage "ctrl-smoke"
# End-to-end control plane: serve a paced replay from the default-preset
# binary, probe the admin endpoints, hot-swap a retrained bundle
# mid-replay, reject a corrupt one, and drain out via /quitquitquit.
# The paced source (20 kpps against a 20k-packet trace) keeps the replay
# alive for ~1s so the swap provably lands while shards are processing.
ctrl_dir="$PWD/build/ctrl-smoke"
rm -rf "$ctrl_dir"
mkdir -p "$ctrl_dir"
./build/tools/iustitia gen-corpus "$ctrl_dir/corpus" --files 8 --seed 7
./build/tools/iustitia train "$ctrl_dir/corpus" "$ctrl_dir/model.bundle" \
  --meta "v1 ci-smoke"
./build/tools/iustitia train "$ctrl_dir/corpus" "$ctrl_dir/model2.bundle" \
  --meta "v2 ci-smoke-retrained" --buffer 48
./build/tools/iustitia gen-trace "$ctrl_dir/trace.pcap" \
  --packets 20000 --seed 11
./build/tools/iustitia serve "$ctrl_dir/model.bundle" "$ctrl_dir/trace.pcap" \
  --shards 2 --burst 16 --backpressure block --pps 20000 \
  --port-file "$ctrl_dir/port" --json > "$ctrl_dir/serve.json" &
serve_pid=$!
for _ in $(seq 1 100); do
  [[ -s "$ctrl_dir/port" ]] && break
  sleep 0.1
done
[[ -s "$ctrl_dir/port" ]] || {
  echo "ci.sh: serve never wrote its port file" >&2
  kill -9 "$serve_pid" 2>/dev/null || true
  exit 1
}
admin="http://127.0.0.1:$(cat "$ctrl_dir/port")"
curl -fsS "$admin/healthz" > /dev/null
curl -fsS "$admin/metrics" | grep -F 'iustitia_model_info{version="v1"} 1'
# Mid-replay hot swap; then a corrupt upload, which must change nothing.
curl -fsS -X POST --data-binary @"$ctrl_dir/model2.bundle" "$admin/model" \
  | grep -F '"version": "v2"'
head -c 200 "$ctrl_dir/model2.bundle" > "$ctrl_dir/corrupt.bundle"
if curl -fsS -X POST --data-binary @"$ctrl_dir/corrupt.bundle" \
    "$admin/model" 2>/dev/null; then
  echo "ci.sh: corrupt bundle was accepted" >&2
  exit 1
fi
curl -fsS "$admin/stats.json" > "$ctrl_dir/stats.json"
python3 - "$ctrl_dir/stats.json" <<'PYEOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["model_swaps"] == 1, snap["model_swaps"]
assert snap["model_version"] == "v2", snap["model_version"]
PYEOF
# Let the paced replay drain fully (serving mode lingers after the trace
# ends), so the final report covers every packet.
for _ in $(seq 1 300); do
  packets="$(curl -fsS "$admin/stats.json" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["packets_in"])')"
  [[ "$packets" == 20000 ]] && break
  sleep 0.1
done
[[ "$packets" == 20000 ]] || {
  echo "ci.sh: replay never drained (packets_in=$packets)" >&2
  kill -9 "$serve_pid"
  exit 1
}
curl -fsS -X POST "$admin/quitquitquit" | grep -F draining > /dev/null
for _ in $(seq 1 100); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "ci.sh: serve did not exit after /quitquitquit" >&2
  kill -9 "$serve_pid"
  exit 1
fi
wait "$serve_pid"
# The blocking-backpressure replay must have swapped without loss.
python3 - "$ctrl_dir/serve.json" <<'PYEOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["model_swaps"] == 1, snap["model_swaps"]
assert snap["model_version"] == "v2", snap["model_version"]
assert snap["dropped"] == 0, snap["dropped"]
assert snap["packets_in"] == 20000, snap["packets_in"]
PYEOF

stage "chaos"
# Fault-injection soak against the real binaries (DESIGN.md §12): replay
# with armed failpoints on the source, ring, and CDB layers under both
# backpressure modes, then a serve-mode watchdog round-trip driven
# through POST /failpoints and observed via /readyz.
chaos_dir="$PWD/build/chaos"
rm -rf "$chaos_dir"
mkdir -p "$chaos_dir"
./build/tools/iustitia gen-corpus "$chaos_dir/corpus" --files 8 --seed 7
./build/tools/iustitia train "$chaos_dir/corpus" "$chaos_dir/model.bundle"
./build/tools/iustitia gen-trace "$chaos_dir/trace.pcap" \
  --packets 20000 --seed 13
chaos_spec='source.next=error(0.02);ring.push=delay(20us,0.01)'
chaos_spec+=';cdb.insert=alloc-fail(0.05)'
for mode in block drop; do
  IUSTITIA_FAILPOINTS="$chaos_spec" ./build/tools/iustitia replay \
    "$chaos_dir/model.bundle" "$chaos_dir/trace.pcap" \
    --shards 2 --burst 16 --backpressure "$mode" --cdb-max 64 --json \
    > "$chaos_dir/replay_$mode.json"
done
python3 - "$chaos_dir/replay_block.json" "$chaos_dir/replay_drop.json" \
    <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    snap = json.load(open(path))
    # Conservation: transient source errors are retried, never EOF; every
    # packet read is pushed or counted as dropped, and everything pushed
    # is popped.
    assert snap["packets_in"] == 20000, (path, snap["packets_in"])
    assert snap["pushed"] + snap["dropped"] == snap["packets_in"], path
    assert snap["popped"] == snap["pushed"], path
    assert snap["source_transient_errors"] > 0, path
    # Bounded memory: the per-shard ceiling held and refusals were
    # accounted.
    assert snap["cdb"]["ceiling"] == 64, path
    assert snap["cdb"]["records"] <= 2 * 64, path
    assert snap["cdb"]["insert_failures"] > 0, path
    assert snap["health"] == "ok", (path, snap["health"])
block = json.load(open(sys.argv[1]))
assert block["dropped"] == 0, block["dropped"]
PYEOF
# Watchdog readiness round-trip: pin the workers with worker.stall until
# /readyz reports 503 unhealthy(watchdog), disarm, and require recovery
# to 200 ok while the paced replay is still live.
./build/tools/iustitia serve "$chaos_dir/model.bundle" \
  "$chaos_dir/trace.pcap" --shards 2 --backpressure block --pps 500 \
  --watchdog-ms 500 --port-file "$chaos_dir/port" --json \
  > "$chaos_dir/serve.json" &
chaos_pid=$!
for _ in $(seq 1 100); do
  [[ -s "$chaos_dir/port" ]] && break
  sleep 0.1
done
[[ -s "$chaos_dir/port" ]] || {
  echo "ci.sh: chaos serve never wrote its port file" >&2
  kill -9 "$chaos_pid" 2>/dev/null || true
  exit 1
}
chaos_admin="http://127.0.0.1:$(cat "$chaos_dir/port")"
curl -fsS "$chaos_admin/readyz" | grep -Fx ok
curl -fsS -X POST --data 'worker.stall=stall(2s)' \
  "$chaos_admin/failpoints" > /dev/null
# The stall latch flaps as each 2s sleep ends, so poll until one 503 is
# observed rather than demanding a steady state.
ready_code=0
for _ in $(seq 1 100); do
  ready_code="$(curl -s -o "$chaos_dir/readyz.txt" -w '%{http_code}' \
    "$chaos_admin/readyz")"
  [[ "$ready_code" == 503 ]] && break
  sleep 0.1
done
[[ "$ready_code" == 503 ]] || {
  echo "ci.sh: /readyz never reported the stalled worker" >&2
  kill -9 "$chaos_pid"
  exit 1
}
grep -F 'unhealthy(watchdog)' "$chaos_dir/readyz.txt"
curl -fsS -X POST --data 'off' "$chaos_admin/failpoints" > /dev/null
recovered=""
for _ in $(seq 1 100); do
  if curl -fsS "$chaos_admin/readyz" 2>/dev/null | grep -qFx ok; then
    recovered=yes
    break
  fi
  sleep 0.1
done
[[ -n "$recovered" ]] || {
  echo "ci.sh: /readyz never recovered after disarming the stall" >&2
  kill -9 "$chaos_pid"
  exit 1
}
curl -fsS -X POST "$chaos_admin/quitquitquit" > /dev/null
for _ in $(seq 1 100); do
  kill -0 "$chaos_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$chaos_pid" 2>/dev/null; then
  echo "ci.sh: chaos serve did not exit after /quitquitquit" >&2
  kill -9 "$chaos_pid"
  exit 1
fi
wait "$chaos_pid"

stage "perf-smoke"
# Reduced-size run of the entropy-kernel microbench, gated on >30%
# regression against the checked-in baseline (speedup is the gated,
# machine-portable metric; see tools/perf_check.py).
IUSTITIA_KERNEL_MIN_MS=60 ./build/bench/bench_entropy_kernel \
  build/BENCH_entropy_kernel.json
python3 tools/perf_check.py build/BENCH_entropy_kernel.json \
  bench/baselines/entropy_kernel.json

# Serving-runtime bench at reduced trace size, same gating scheme (rows
# keyed by shard count via the baseline's key_fields).
IUSTITIA_TRACE_PACKETS=25000 ./build/bench/bench_runtime \
  build/BENCH_runtime.json
python3 tools/perf_check.py build/BENCH_runtime.json \
  bench/baselines/runtime.json

# End-to-end batched hot path: shards x burst sweep at reduced trace
# size.  The baseline's absolute pkts_per_sec floors encode the
# >=1.3x-over-the-pre-burst-runtime acceptance bar (the floor is 1.37x
# the measured pre-change throughput; see the baseline's comment), and
# speedup_vs_single guards the burst protocol against regressing below
# the in-binary single-item path.
IUSTITIA_TRACE_PACKETS=25000 ./build/bench/bench_e2e_throughput \
  build/BENCH_e2e_throughput.json
python3 tools/perf_check.py build/BENCH_e2e_throughput.json \
  bench/baselines/e2e_throughput.json

echo "ci.sh: all presets green"
