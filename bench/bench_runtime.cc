// Serving-runtime bench: end-to-end packets/second of the online runtime
// (dispatcher + SPSC rings + shard workers + per-nature output queues),
// swept across shard counts.
//
// Unlike bench_throughput (which pre-partitions the trace and times only
// the engines), this measures the deployment path the runtime subsystem
// adds: live steering, ring transport, backpressure, and metrics — the
// difference between the two is the orchestration overhead.  Results go
// to stdout and to machine-readable JSON (argv[1], default
// BENCH_runtime.json); tools/ci.sh runs a reduced form and gates it
// against bench/baselines/runtime.json via tools/perf_check.py.
//
// Knobs: IUSTITIA_TRACE_PACKETS  synthetic trace packet budget
//                                (default 200000; CI smoke uses 25000).
#include <algorithm>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "appproto/trace_headers.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "entropy/entropy_vector.h"
#include "net/trace_gen.h"
#include "runtime/runtime.h"
#include "util/timer.h"

namespace iustitia::bench {
namespace {

struct RuntimeRow {
  std::size_t shards = 0;
  double seconds = 0.0;
  double pkts_per_sec = 0.0;
  double scaling_vs_1shard = 0.0;
  std::uint64_t flows_classified = 0;
  std::uint64_t dropped = 0;
  double p99_latency_upper_micros = 0.0;
};

std::function<core::FlowNatureModel()> model_factory() {
  return [] {
    const auto corpus = standard_corpus(40);
    core::TrainerOptions options;
    options.backend = core::Backend::kCart;
    options.widths = entropy::cart_preferred_widths();
    options.method = core::TrainingMethod::kFirstBytes;
    options.buffer_size = 32;
    return core::train_model(corpus, options);
  };
}

void write_json(const std::string& path,
                const std::vector<RuntimeRow>& rows, std::size_t packets) {
  std::ofstream out(path);
  out << std::setprecision(12);
  out << "{\n  \"bench\": \"runtime\",\n  \"trace_packets\": " << packets
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RuntimeRow& r = rows[i];
    out << "    {\"shards\": " << r.shards
        << ", \"pkts_per_sec\": " << r.pkts_per_sec
        << ", \"scaling_vs_1shard\": " << r.scaling_vs_1shard
        << ", \"flows_classified\": " << r.flows_classified
        << ", \"dropped\": " << r.dropped
        << ", \"p99_latency_upper_micros\": " << r.p99_latency_upper_micros
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  banner("Serving-runtime throughput: dispatcher + rings + shard workers",
         "context: bench_throughput times bare engines on pre-split "
         "traces; this times the full online deployment path");

  const std::size_t packets = env_size("IUSTITIA_TRACE_PACKETS", 200000);
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_runtime.json";
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = packets;
  trace_options.seed = 0x78A;
  const std::size_t trace_size =
      net::generate_trace(trace_options).packets.size();
  std::cout << "trace: " << trace_size << " packets; hardware threads: "
            << hw << "\n\n";

  const auto factory = model_factory();
  std::vector<RuntimeRow> rows;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    runtime::RuntimeOptions options;
    options.shards = shards;
    options.backpressure = runtime::BackpressurePolicy::kBlock;  // lossless
    options.latency_sample_every = 16;
    options.engine.buffer_size = 32;
    runtime::Runtime rt(factory, options);

    // Fresh trace per run: a TraceSource is single-shot (packets are
    // moved out).  Same seed, so every shard count replays identical
    // input; generation is outside the timed window.
    runtime::TraceSource source(net::generate_trace(trace_options));

    const util::Stopwatch timer;
    rt.start(source);
    rt.wait();
    const double seconds = timer.elapsed_seconds();

    const runtime::MetricsSnapshot snap = rt.snapshot();
    RuntimeRow row;
    row.shards = shards;
    row.seconds = seconds;
    row.pkts_per_sec = static_cast<double>(snap.packets_in) / seconds;
    row.scaling_vs_1shard =
        rows.empty() ? 1.0 : row.pkts_per_sec / rows.front().pkts_per_sec;
    row.flows_classified = snap.flows_by_nature[0] +
                           snap.flows_by_nature[1] + snap.flows_by_nature[2];
    row.dropped = snap.total_dropped();
    row.p99_latency_upper_micros =
        snap.engine_latency.quantile_upper_micros(0.99);
    rows.push_back(row);
    rt.output_queues().drain_all();
  }

  util::Table table({"shards", "replay time", "packets/sec", "scaling",
                     "flows", "dropped", "p99 latency"});
  for (const RuntimeRow& r : rows) {
    table.add_row({std::to_string(r.shards), util::fmt_seconds(r.seconds),
                   util::fmt(r.pkts_per_sec / 1e6, 2) + " M",
                   util::fmt(r.scaling_vs_1shard, 2) + "x",
                   std::to_string(r.flows_classified),
                   std::to_string(r.dropped),
                   util::fmt(r.p99_latency_upper_micros, 1) + "us"});
  }
  table.render(std::cout);
  std::cout << "\ncontext: blocking backpressure is lossless, so every "
               "shard count does identical classification work; scaling "
               "tracks available cores (" << hw << " here), and the "
               "dispatcher thread itself caps it at high shard counts.\n";

  write_json(json_path, rows, trace_size);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main(int argc, char** argv) { return iustitia::bench::run(argc, argv); }
