// Fused single-pass multi-width entropy kernel.
//
// The legacy exact path (entropy/entropy_vector.h driving one GramCounter
// per width) sweeps the buffer once *per width*: n widths mean n full
// passes, each re-packing its gram from scratch and probing a node-based
// hash map.  This kernel sweeps the buffer once total.  It maintains a
// single rolling 128-bit key holding the last 16 bytes of the stream; the
// k-gram ending at the current byte is just `rolling & mask_k`, so every
// configured width's counters are updated from one shift-or per byte.
// Width >= 2 counts live in FlatCounts (open addressing, epoch reset);
// width 1 keeps the flat 256-entry array.  The incremental
// S_k = sum m_ik ln(m_ik) bookkeeping uses the n*ln(n) lookup table
// instead of two libm calls per gram.
//
// The steady-state sweep is block-wise (kBlockBytes at a time): all
// rolling keys for a block are computed up front with pure shift-ors,
// then each width probes its table over the block with the slot of the
// key a few probes ahead already prefetched — so the dependent loads of
// consecutive table misses overlap instead of serializing (§9).
//
// Numerical contract: for every width the per-gram updates happen in the
// same stream order, with the same double expressions, as GramCounter —
// so the resulting S_k, and therefore every entropy feature, is
// bit-identical to the legacy path (tests assert <= 1e-9; in practice the
// delta is 0).
//
// Streaming: the rolling key itself carries the last bytes across add()
// boundaries, so cross-packet grams need no stitch buffer at all.  After
// the tables have grown to a flow's working set once, add()/features()/
// reset() cycles perform no heap allocation.
#ifndef IUSTITIA_ENTROPY_FUSED_KERNEL_H_
#define IUSTITIA_ENTROPY_FUSED_KERNEL_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "entropy/flat_counts.h"
#include "entropy/gram_counter.h"

namespace iustitia::entropy {

class FusedEntropyKernel {
 public:
  // Steady-state bytes handled per block-wise inner-loop iteration (§9):
  // add() computes all rolling keys for a block first, then probes each
  // width's table with the key a few probes ahead prefetched, so table
  // misses overlap.  Exposed so tests can pin inputs to block boundaries
  // (block−1 / block / block+1) where the bit-identity contract is most
  // at risk.
  static constexpr std::size_t kBlockBytes = 16;

  // `widths` are the feature widths, each in [1, 16], reported in input
  // order; throws std::invalid_argument on an out-of-range width.
  explicit FusedEntropyKernel(std::span<const int> widths);

  // Appends `data` to the logical stream, updating every width's
  // counters; grams spanning add() boundaries are counted via the rolling
  // key.  Allocation-free once the tables have reached working-set size.
  void add(std::span<const std::uint8_t> data);

  // Invalidates all counts in O(widths) while keeping every table's
  // capacity, so the kernel can be reused flow after flow.
  void reset() noexcept;

  // Writes the normalized entropy h_k of each configured width into
  // `out` (one slot per width, input order); out.size() must equal
  // widths().size().  Allocation-free.
  void features(std::span<double> out) const;

  // Convenience allocating variant of features().
  std::vector<double> vector() const;

  std::span<const int> widths() const noexcept { return widths_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  // Per-width accessors (index into widths(), checked): gram total,
  // distinct grams, one gram's count, and the incremental S_k.
  std::uint64_t total_grams(std::size_t width_index) const;
  std::size_t distinct(std::size_t width_index) const;
  std::uint64_t count(std::size_t width_index, GramKey key) const;
  double sum_count_log_count(std::size_t width_index) const;

  // Paper-style counter-space accounting, matching GramCounter slot for
  // slot (Fig. 5(b)/Table 3 series): 256 4-byte counters for width 1,
  // 32 bytes per distinct gram otherwise.
  std::size_t space_bytes() const noexcept;

  // Actual resident bytes of the flat tables + width-1 array.
  std::size_t resident_bytes() const noexcept;

 private:
  struct WidthState {
    int width = 0;
    GramKey mask = 0;  // low 8*width bits set
    double sum = 0.0;  // S_k, maintained incrementally
    std::uint64_t grams = 0;
    FlatCounts counts;  // width >= 2 only
  };

  void update_state(WidthState& state, std::uint8_t byte);
  // Steady-state fast path: consumes exactly kBlockBytes bytes,
  // keys-first then per-width prefetched probe passes.  Bit-identical to
  // kBlockBytes update_state calls per width.
  void add_block(const std::uint8_t* bytes);

  std::vector<int> widths_;
  std::vector<WidthState> states_;  // parallel to widths_
  std::array<std::uint64_t, 256> byte_counts_{};  // width-1 fast path
  GramKey rolling_ = 0;   // last 16 stream bytes, newest in the low byte
  std::uint64_t pos_ = 0;  // bytes seen since reset
  std::uint64_t total_bytes_ = 0;
  int max_width_ = 1;
};

}  // namespace iustitia::entropy

#endif  // IUSTITIA_ENTROPY_FUSED_KERNEL_H_
