// Tests for offline flow reassembly.
#include "net/flow_table.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "appproto/trace_headers.h"
#include "net/trace_gen.h"

namespace iustitia::net {
namespace {

Packet data_packet(const FlowKey& key, double ts,
                   std::vector<std::uint8_t> payload) {
  Packet p;
  p.key = key;
  p.timestamp = ts;
  p.payload = std::move(payload);
  return p;
}

TEST(FlowTable, GroupsByFiveTuple) {
  FlowTable table;
  FlowKey a{.src_ip = 1, .dst_ip = 2, .src_port = 3, .dst_port = 4,
            .protocol = Protocol::kTcp};
  FlowKey b = a;
  b.dst_port = 5;
  table.add(data_packet(a, 0.0, {1, 2}));
  table.add(data_packet(a, 0.1, {3}));
  table.add(data_packet(b, 0.2, {4}));
  EXPECT_EQ(table.flow_count(), 2u);
  const FlowRecord& ra = table.flows().at(a);
  EXPECT_EQ(ra.packets, 2u);
  EXPECT_EQ(ra.data_packets, 2u);
  EXPECT_EQ(ra.payload_bytes, 3u);
  EXPECT_EQ(ra.prefix, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(ra.first_seen, 0.0);
  EXPECT_DOUBLE_EQ(ra.last_seen, 0.1);
}

TEST(FlowTable, PrefixLimitRespected) {
  FlowTable table(4);
  FlowKey key{.src_ip = 9, .dst_ip = 9, .src_port = 9, .dst_port = 9,
              .protocol = Protocol::kUdp};
  table.add(data_packet(key, 0.0, {1, 2, 3}));
  table.add(data_packet(key, 0.1, {4, 5, 6}));
  const FlowRecord& record = table.flows().at(key);
  EXPECT_EQ(record.prefix, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(record.payload_bytes, 6u);  // accounting unaffected by cap
}

TEST(FlowTable, TracksFinRstAndControlPackets) {
  FlowTable table;
  FlowKey key{.src_ip = 1, .dst_ip = 1, .src_port = 1, .dst_port = 1,
              .protocol = Protocol::kTcp};
  Packet syn;
  syn.key = key;
  syn.flags.syn = true;
  table.add(syn);
  table.add(data_packet(key, 0.5, {7}));
  Packet fin;
  fin.key = key;
  fin.timestamp = 1.0;
  fin.flags.fin = true;
  table.add(fin);
  const FlowRecord& record = table.flows().at(key);
  EXPECT_EQ(record.packets, 3u);
  EXPECT_EQ(record.data_packets, 1u);
  EXPECT_TRUE(record.saw_fin);
  EXPECT_FALSE(record.saw_rst);
  EXPECT_EQ(record.data_packet_times.size(), 1u);
}

TEST(FlowTable, ReassemblesGeneratedTraceConsistently) {
  TraceOptions options;
  options.header_source = appproto::standard_header_source();
  options.target_packets = 10000;
  options.seed = 5;
  const Trace trace = generate_trace(options);
  FlowTable table;
  for (const Packet& p : trace.packets) table.add(p);
  // Every reassembled flow must be in the generator's truth map and
  // payload accounting must be self-consistent.
  for (const auto& [key, record] : table.flows()) {
    ASSERT_TRUE(trace.truth.count(key));
    EXPECT_LE(record.data_packets, record.packets);
    EXPECT_EQ(record.data_packet_times.size(), record.data_packets);
    EXPECT_LE(record.prefix.size(),
              std::min<std::uint64_t>(record.payload_bytes, 4096));
  }
  EXPECT_LE(table.flow_count(), trace.truth.size());
}

}  // namespace
}  // namespace iustitia::net
