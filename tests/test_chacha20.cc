// ChaCha20 correctness against the RFC 8439 test vectors.
#include "datagen/chacha20.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

namespace iustitia::datagen {
namespace {

ChaCha20::Key rfc_key() {
  ChaCha20::Key key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  return key;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

TEST(ChaCha20, Rfc8439BlockFunctionVector) {
  // RFC 8439 Section 2.3.2.
  ChaCha20::Nonce nonce{0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = ChaCha20::block(rfc_key(), nonce, 1);
  EXPECT_EQ(to_hex(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 Section 2.4.2: "Ladies and Gentlemen of the class of '99..."
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  ChaCha20::Nonce nonce{0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 cipher(rfc_key(), nonce, /*initial_counter=*/1);
  const std::vector<std::uint8_t> pt(plaintext.begin(), plaintext.end());
  const auto ct = cipher.encrypt(pt);
  EXPECT_EQ(
      to_hex(std::span<const std::uint8_t>(ct.data(), 64)),
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8");
  EXPECT_EQ(ct.size(), pt.size());
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  ChaCha20::Key key{};
  key[0] = 0xAB;
  ChaCha20::Nonce nonce{};
  nonce[5] = 0x42;
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  const std::vector<std::uint8_t> original = data;

  ChaCha20 enc(key, nonce);
  enc.apply(data);
  EXPECT_NE(data, original);
  ChaCha20 dec(key, nonce);
  dec.apply(data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  ChaCha20::Key key{};
  ChaCha20::Nonce nonce{};
  std::vector<std::uint8_t> a(300, 0), b(300, 0);

  ChaCha20 one(key, nonce);
  one.apply(a);

  ChaCha20 chunked(key, nonce);
  for (std::size_t at = 0; at < b.size(); at += 77) {
    const std::size_t take = std::min<std::size_t>(77, b.size() - at);
    chunked.apply(std::span<std::uint8_t>(b.data() + at, take));
  }
  EXPECT_EQ(a, b);
}

TEST(ChaCha20, DifferentNoncesDifferentKeystreams) {
  ChaCha20::Key key{};
  ChaCha20::Nonce n1{}, n2{};
  n2[0] = 1;
  std::vector<std::uint8_t> a(64, 0), b(64, 0);
  ChaCha20(key, n1).apply(a);
  ChaCha20(key, n2).apply(b);
  EXPECT_NE(a, b);
}

TEST(ChaCha20, CiphertextLooksUniform) {
  // The corpus-level property the paper keys on: ciphertext byte histogram
  // is flat.  Chi-square against uniform over 64 KiB must be unremarkable.
  ChaCha20::Key key{};
  key[31] = 0x77;
  ChaCha20::Nonce nonce{};
  std::vector<std::uint8_t> data(65536, 0x00);  // worst-case plaintext
  ChaCha20(key, nonce).apply(data);
  double counts[256] = {};
  for (const std::uint8_t b : data) counts[b] += 1.0;
  const double expected = 65536.0 / 256.0;
  double chi2 = 0.0;
  for (const double c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 255 degrees of freedom: mean 255, stddev ~22.6; 5 sigma ~ 368.
  EXPECT_LT(chi2, 368.0);
  EXPECT_GT(chi2, 150.0);  // suspiciously flat would also be a bug
}

}  // namespace
}  // namespace iustitia::datagen
