# Empty dependencies file for test_tunnel.
# This may be replaced when dependencies are built.
