#include "ml/metrics.h"

#include <stdexcept>

namespace iustitia::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes) *
                 static_cast<std::size_t>(num_classes),
             0) {
  if (num_classes <= 0) {
    throw std::invalid_argument("ConfusionMatrix: num_classes must be > 0");
  }
}

void ConfusionMatrix::add(int actual, int predicted) {
  if (actual < 0 || actual >= num_classes_ || predicted < 0 ||
      predicted >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++cells_[static_cast<std::size_t>(actual) *
               static_cast<std::size_t>(num_classes_) +
           static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.num_classes_ != num_classes_) {
    throw std::invalid_argument("ConfusionMatrix::merge: dimension mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  return cells_[static_cast<std::size_t>(actual) *
                    static_cast<std::size_t>(num_classes_) +
                static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::class_accuracy(int actual) const {
  std::size_t row_total = 0;
  for (int p = 0; p < num_classes_; ++p) row_total += count(actual, p);
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(actual, actual)) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::misclassification_rate(int actual,
                                               int predicted) const {
  std::size_t row_total = 0;
  for (int p = 0; p < num_classes_; ++p) row_total += count(actual, p);
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(actual, predicted)) /
         static_cast<double>(row_total);
}

double mean_accuracy(const std::vector<ConfusionMatrix>& folds) {
  if (folds.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : folds) sum += m.accuracy();
  return sum / static_cast<double>(folds.size());
}

}  // namespace iustitia::ml
