file(REMOVE_RECURSE
  "CMakeFiles/iustitia_datagen.dir/binary_gen.cc.o"
  "CMakeFiles/iustitia_datagen.dir/binary_gen.cc.o.d"
  "CMakeFiles/iustitia_datagen.dir/chacha20.cc.o"
  "CMakeFiles/iustitia_datagen.dir/chacha20.cc.o.d"
  "CMakeFiles/iustitia_datagen.dir/corpus.cc.o"
  "CMakeFiles/iustitia_datagen.dir/corpus.cc.o.d"
  "CMakeFiles/iustitia_datagen.dir/corpus_io.cc.o"
  "CMakeFiles/iustitia_datagen.dir/corpus_io.cc.o.d"
  "CMakeFiles/iustitia_datagen.dir/lz77.cc.o"
  "CMakeFiles/iustitia_datagen.dir/lz77.cc.o.d"
  "CMakeFiles/iustitia_datagen.dir/markov_text.cc.o"
  "CMakeFiles/iustitia_datagen.dir/markov_text.cc.o.d"
  "CMakeFiles/iustitia_datagen.dir/text_gen.cc.o"
  "CMakeFiles/iustitia_datagen.dir/text_gen.cc.o.d"
  "libiustitia_datagen.a"
  "libiustitia_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
