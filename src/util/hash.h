// Small non-cryptographic hashing helpers used by hash tables and sketches.
#ifndef IUSTITIA_UTIL_HASH_H_
#define IUSTITIA_UTIL_HASH_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace iustitia::util {

// 64-bit FNV-1a over a byte span.
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

inline std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                           std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view data,
                           std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Strong 64-bit finalizer (from MurmurHash3 / SplitMix64 family).
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Combines two 64-bit hashes (boost::hash_combine style, widened).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_HASH_H_
