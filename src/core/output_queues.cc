#include "core/output_queues.h"

#include <utility>

#include "util/check.h"
#include "util/rt_guard.h"

namespace iustitia::core {

std::size_t OutputQueues::index_of(datagen::FileClass label) {
  const auto index = static_cast<std::size_t>(label);
  CHECK_LT(index, std::size_t{3}) << "unknown FileClass label";
  return index;
}

bool OutputQueues::enqueue(datagen::FileClass label, net::Packet packet) {
  // Bounded handoff out of the worker loop: a short uncontended lock
  // plus one deque node (and, on the refused path, the payload retired
  // with the by-value parameter) — the accepted cost of crossing to the
  // consumer side.
  util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
  const std::size_t index = index_of(label);
  util::MutexLock lock(mu_);
  if (capacity_ != 0 && queues_[index].size() >= capacity_) {
    ++dropped_[index];
    return false;
  }
  queues_[index].push_back(QueuedPacket{std::move(packet), label});
  ++enqueued_[index];
  if (queues_[index].size() > high_water_[index]) {
    high_water_[index] = queues_[index].size();
  }
  DCHECK(capacity_ == 0 || queues_[index].size() <= capacity_);
  return true;
}

std::size_t OutputQueues::enqueue_burst(std::span<QueuedPacket> batch) {
  if (batch.empty()) return 0;
  // Same cold-branch budget as enqueue(), paid once per burst: the lock
  // crossing and the deque nodes are amortized over the whole batch, and
  // refused payloads are NOT freed here — they stay with the caller, so
  // the lock hold time is bounded by queue work alone.
  util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
  std::size_t accepted = 0;
  util::MutexLock lock(mu_);
  for (QueuedPacket& item : batch) {
    const std::size_t index = index_of(item.label);
    if (capacity_ != 0 && queues_[index].size() >= capacity_) {
      ++dropped_[index];
      continue;
    }
    queues_[index].push_back(std::move(item));
    ++enqueued_[index];
    if (queues_[index].size() > high_water_[index]) {
      high_water_[index] = queues_[index].size();
    }
    DCHECK(capacity_ == 0 || queues_[index].size() <= capacity_);
    ++accepted;
  }
  return accepted;
}

std::size_t OutputQueues::drain_all() {
  util::MutexLock lock(mu_);
  std::size_t discarded = 0;
  for (auto& queue : queues_) {
    discarded += queue.size();
    queue.clear();
  }
  return discarded;
}

std::optional<QueuedPacket> OutputQueues::dequeue_locked(
    datagen::FileClass label) {
  const std::size_t index = index_of(label);
  if (queues_[index].empty()) return std::nullopt;
  QueuedPacket out = std::move(queues_[index].front());
  queues_[index].pop_front();
  return out;
}

std::optional<QueuedPacket> OutputQueues::dequeue(datagen::FileClass label) {
  util::MutexLock lock(mu_);
  return dequeue_locked(label);
}

std::optional<QueuedPacket> OutputQueues::dequeue_priority(
    std::span<const datagen::FileClass> priority_order) {
  util::MutexLock lock(mu_);
  for (const datagen::FileClass label : priority_order) {
    auto packet = dequeue_locked(label);
    if (packet.has_value()) return packet;
  }
  return std::nullopt;
}

std::size_t OutputQueues::depth(datagen::FileClass label) const {
  const std::size_t index = index_of(label);
  util::MutexLock lock(mu_);
  return queues_[index].size();
}

std::uint64_t OutputQueues::enqueued(datagen::FileClass label) const {
  const std::size_t index = index_of(label);
  util::MutexLock lock(mu_);
  return enqueued_[index];
}

std::uint64_t OutputQueues::dropped(datagen::FileClass label) const {
  const std::size_t index = index_of(label);
  util::MutexLock lock(mu_);
  return dropped_[index];
}

std::size_t OutputQueues::high_water(datagen::FileClass label) const {
  const std::size_t index = index_of(label);
  util::MutexLock lock(mu_);
  return high_water_[index];
}

OutputQueueStats OutputQueues::stats() const {
  OutputQueueStats out;
  util::MutexLock lock(mu_);
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    out.enqueued[i] = enqueued_[i];
    out.dropped[i] = dropped_[i];
    out.depth[i] = queues_[i].size();
    out.high_water[i] = high_water_[i];
  }
  return out;
}

}  // namespace iustitia::core
