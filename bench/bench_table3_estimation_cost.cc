// Reproduces Table 3: time and space for computing one entropy vector by
// exact calculation vs (delta, epsilon)-estimation, at b = 1024 and b = 32,
// for both preferred feature sets.
//
// Paper numbers: at b=1024, estimation uses ~3x less space but ~3x more
// time than exact calculation (SVM: 5428us/5.1KB exact vs 16421us/1.6KB
// estimated on 2009 hardware); at b=32 estimation is not applicable (the
// sketch needs |f_i| >> b to pay off and the paper reports exact only).
#include "bench/bench_common.h"
#include "util/timer.h"

#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "entropy/entropy_vector.h"
#include "entropy/estimator.h"

namespace iustitia::bench {
namespace {

struct Cost {
  double micros = 0.0;
  std::size_t space = 0;
};

Cost measure_exact(std::span<const std::uint8_t> data,
                   const std::vector<int>& widths, int repeats) {
  Cost cost;
  util::Stopwatch timer;
  for (int r = 0; r < repeats; ++r) {
    const auto result = entropy::compute_entropy_vector(data, widths);
    cost.space = result.space_bytes;
  }
  cost.micros = timer.elapsed_micros() / repeats;
  return cost;
}

Cost measure_estimated(std::span<const std::uint8_t> data,
                       const std::vector<int>& widths,
                       const entropy::EstimatorParams& params, int repeats) {
  Cost cost;
  util::Rng rng(0xE57);
  util::Stopwatch timer;
  for (int r = 0; r < repeats; ++r) {
    const auto result =
        entropy::estimate_entropy_vector(data, widths, params, rng);
    cost.space = result.space_bytes;
  }
  cost.micros = timer.elapsed_micros() / repeats;
  return cost;
}

int run() {
  banner("Table 3: entropy vector exact calculation vs estimation",
         "estimation: ~3x less space, ~3x more time at b=1024");

  util::Rng rng(0x7AB);
  const datagen::FileSample file =
      datagen::generate_file(datagen::FileClass::kBinary, 8192, rng);
  const entropy::EstimatorParams params{.epsilon = 0.25, .delta = 0.75};
  const int repeats = 50;

  util::Table table({"config", "feature set", "calc time", "calc space",
                     "est. time", "est. space"});
  double svm_calc_time = 0, svm_est_time = 0;
  std::size_t svm_calc_space = 0, svm_est_space = 0;

  for (const std::size_t b : {std::size_t{1024}, std::size_t{32}}) {
    const std::span<const std::uint8_t> data(file.bytes.data(), b);
    for (const bool svm : {true, false}) {
      const auto widths = svm ? entropy::svm_preferred_widths()
                              : entropy::cart_preferred_widths();
      const Cost exact = measure_exact(data, widths, repeats);
      std::vector<std::string> row{
          "b=" + std::to_string(b) + "B", svm ? "SVM" : "CART",
          util::fmt(exact.micros, 1) + " us",
          util::fmt_bytes(static_cast<double>(exact.space))};
      if (b >= 256) {
        const Cost est = measure_estimated(data, widths, params, repeats);
        row.push_back(util::fmt(est.micros, 1) + " us");
        row.push_back(util::fmt_bytes(static_cast<double>(est.space)));
        if (svm && b == 1024) {
          svm_calc_time = exact.micros;
          svm_est_time = est.micros;
          svm_calc_space = exact.space;
          svm_est_space = est.space;
        }
      } else {
        // Estimation is ineffective for small buffers (paper Section
        // 4.4.2, observation 3): reported as "-" like Table 3.
        row.push_back("-");
        row.push_back("-");
      }
      table.add_row(std::move(row));
    }
  }
  table.render(std::cout);

  // Formula (4) as a configuration tool: given a counter budget alpha,
  // choose (epsilon, delta) automatically (the paper computes the bound
  // for alpha ~= 1911 at b=1024).
  std::cout << "\n-- Formula (4): budget-driven estimator configuration "
               "(b=1024, SVM set) --\n";
  util::Table budget_table({"counter budget alpha", "chosen epsilon",
                            "chosen delta", "sketch space"});
  const auto svm_widths = entropy::svm_preferred_widths();
  for (const std::size_t alpha : {std::size_t{500}, std::size_t{1000},
                                  std::size_t{1911}, std::size_t{4000}}) {
    const auto chosen =
        entropy::choose_estimator_params(svm_widths, 1024, alpha);
    if (chosen.has_value()) {
      budget_table.add_row(
          {std::to_string(alpha), util::fmt(chosen->epsilon, 3),
           util::fmt(chosen->delta, 2),
           util::fmt_bytes(static_cast<double>(entropy::estimator_space_bytes(
               svm_widths, 1024, *chosen)))});
    } else {
      budget_table.add_row({std::to_string(alpha), "-", "-", "infeasible"});
    }
  }
  budget_table.render(std::cout);

  std::cout << "\npaper:    at b=1024 (SVM set): estimation ~3.0x slower, "
               "~3.2x smaller\n";
  std::cout << "measured: estimation "
            << util::fmt(svm_est_time / svm_calc_time, 1) << "x slower, "
            << util::fmt(static_cast<double>(svm_calc_space) /
                             static_cast<double>(svm_est_space),
                         1)
            << "x smaller\n";
  std::cout << "(absolute microseconds differ from the paper's 2009 AMD "
               "Athlon; the trade-off shape is the reproduction target)\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
