# Empty compiler generated dependencies file for traffic_monitor.
# This may be replaced when dependencies are built.
