// Classic libpcap file format reader/writer, implemented from scratch.
//
// The paper's delay experiments run on a gateway trace from the UMASS
// repository; we cannot redistribute it, so synthetic traces round-trip
// through the standard pcap container instead: write with PcapWriter, read
// back with PcapReader (or into any other pcap-consuming tool).  Frames are
// Ethernet II / IPv4 / {TCP, UDP}; the IPv4 header checksum is computed on
// write and verified on read.
#ifndef IUSTITIA_NET_PCAP_H_
#define IUSTITIA_NET_PCAP_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace iustitia::net {

// Serializes one packet to an Ethernet/IPv4/TCP-or-UDP frame.
std::vector<std::uint8_t> encode_frame(const Packet& packet);

// Parses a frame produced by encode_frame (or any Ethernet/IPv4/TCP|UDP
// frame).  IPv6 frames are also accepted: their 128-bit addresses are
// folded to the 32-bit FlowKey fields with a 64-bit mix (flows remain
// distinct with overwhelming probability; addresses are not recoverable).
// Returns std::nullopt for non-IP or non-TCP/UDP frames; throws
// std::runtime_error on structurally corrupt frames (bad lengths or a bad
// IPv4 header checksum).
std::optional<Packet> decode_frame(std::span<const std::uint8_t> frame,
                                   double timestamp);

// Streaming pcap writer.
class PcapWriter {
 public:
  // Writes the global header immediately.  The stream must outlive the
  // writer.
  explicit PcapWriter(std::ostream& os, std::uint32_t snaplen = 65535);

  // Appends one packet record.
  void write(const Packet& packet);

  std::size_t packets_written() const noexcept { return packets_written_; }

 private:
  std::ostream& os_;
  std::size_t packets_written_ = 0;
};

// Streaming pcap reader.
class PcapReader {
 public:
  // Reads and validates the global header.  Throws std::runtime_error on a
  // bad magic or unsupported link type.
  explicit PcapReader(std::istream& is);

  // Next decodable packet, skipping frames decode_frame rejects; or
  // std::nullopt at end of file.  A capture cut off mid-record (the
  // normal fate of a live capture that was interrupted) ends the stream
  // cleanly at the last complete record and sets truncated() instead of
  // throwing — only structurally corrupt *complete* frames still throw.
  std::optional<Packet> next();

  std::size_t packets_read() const noexcept { return packets_read_; }

  // True once next() hit a final record whose header or body was cut off.
  bool truncated() const noexcept { return truncated_; }

 private:
  std::istream& is_;
  std::size_t packets_read_ = 0;
  bool truncated_ = false;
};

}  // namespace iustitia::net

#endif  // IUSTITIA_NET_PCAP_H_
