"""Dead-code pass: unreferenced exports and unused includes (IWYU-lite).

dead-symbol
    A function/class/enum/alias exported from a src/ header that no file
    outside its own component (the header plus its paired .cc) ever
    mentions is dead weight: it still costs compile time, review
    attention, and refactoring drag.  Tests, benches, examples, and tools
    count as references, so "used only by tests" is alive by design.

unused-include
    A file includes a project header but uses none of the names that
    header provides (exported symbols, enumerators, macros).  Matching is
    by identifier, so a header kept for a type that is only named in a
    transitive way can need an inline suppression:
        #include "foo/bar.h"  // NOLINT(unused-include): <why>

Both rules under-report by construction: any identifier collision counts
as a use.  That is the right failure mode for a gate that must never cry
wolf on legacy code.
"""

from __future__ import annotations

from collections import defaultdict

from cppmodel import IDENT, identifier_uses, macro_body_idents
from findings import Finding
from tokenizer import nolint_lines

# Names too generic to prove liveness/use by identifier matching.
_IGNORED_EXPORTS = {"size", "begin", "end", "value", "type", "data", "get"}


def _component_of(path: str) -> str:
    """foo/bar.cc and foo/bar.h form one component."""
    for suffix in (".cc", ".cpp", ".cxx", ".h", ".hh", ".hpp"):
        if path.endswith(suffix):
            return path[:-len(suffix)]
    return path


def _type_used_in_component(ctx, model, name: str) -> bool:
    """Types get a weaker liveness rule than functions: callers often hold
    them only through `auto` (e.g. the struct returned by stats()), so a
    type named anywhere outside its own definition span — including by the
    component's own declarations — is alive."""
    start, end = model.type_spans[name]
    component = _component_of(model.path)
    for other_path, other_model in ctx.models.items():
        if _component_of(other_path) != component:
            continue
        for t in other_model.code:
            if t.kind != IDENT or t.text != name:
                continue
            if other_path == model.path and start <= t.line <= end:
                continue  # its own definition does not keep it alive
            return True
    return False


def run(ctx) -> list[Finding]:
    findings: list[Finding] = []

    uses_by_file: dict[str, set[str]] = {
        path: identifier_uses(model) for path, model in ctx.models.items()
    }

    # ident -> set of components mentioning it.
    mentions: dict[str, set[str]] = defaultdict(set)
    for path, uses in uses_by_file.items():
        component = _component_of(path)
        for ident in uses:
            mentions[ident].add(component)

    # Macro-expansion liveness, to a fixpoint: if a macro defined in
    # component C is mentioned from outside C, every identifier in its
    # replacement text is reachable from those same outside components
    # (CHECK(...) expands to internal::CheckFailure, so CheckFailure is
    # alive wherever CHECK is used).  Iterated because macros expand to
    # other macros.
    macro_bodies: dict[str, tuple[str, set[str]]] = {}
    for path, model in ctx.models.items():
        component = _component_of(path)
        for name, body in macro_body_idents(model).items():
            macro_bodies.setdefault(name, (component, set()))[1].update(body)
    for _ in range(10):
        changed = False
        for name, (component, body) in macro_bodies.items():
            users = mentions.get(name, set()) - {component}
            if not users:
                continue
            for ident in body:
                if not users <= mentions[ident]:
                    mentions[ident] |= users
                    changed = True
        if not changed:
            break

    # --- dead exported symbols -------------------------------------------
    for path in ctx.universe.headers():
        if ctx.universe.module_of(path) is None:
            continue
        model = ctx.models[path]
        suppressed = nolint_lines(model.tokens, "dead-symbol")
        component = _component_of(path)
        for name, line in sorted(model.exported.items(),
                                 key=lambda kv: kv[1]):
            if name in _IGNORED_EXPORTS or name.startswith("operator"):
                continue
            outside = mentions.get(name, set()) - {component}
            if outside:
                continue
            if name in model.type_spans and \
                    _type_used_in_component(ctx, model, name):
                continue
            if line in suppressed:
                continue
            findings.append(Finding(
                "dead-symbol", path, line,
                f"'{name}' is exported here but never referenced outside "
                f"{component}.*; delete it or NOLINT(dead-symbol) with a "
                f"reason",
                anchor=name))

    # --- unused includes --------------------------------------------------
    for path, model in sorted(ctx.models.items()):
        uses = uses_by_file[path]
        component = _component_of(path)
        suppressed = nolint_lines(model.tokens, "unused-include")
        # For foo.cc, names used by the paired foo.h count: the pair is one
        # component and the .h include chain is part of its interface.
        for other, other_model in ctx.models.items():
            if other != path and _component_of(other) == component:
                uses = uses | uses_by_file[other]
        for inc in model.includes:
            if not inc.is_project:
                continue
            target = ctx.resolve_include(inc.target)
            if target is None or target not in ctx.models:
                continue
            if _component_of(target) == component:
                continue  # paired header include is always kept
            provided = set(ctx.models[target].provided)
            if provided & uses:
                continue
            if inc.line in suppressed:
                continue
            findings.append(Finding(
                "unused-include", path, inc.line,
                f"\"{inc.target}\" is included but none of its "
                f"{len(provided)} exported names are used",
                anchor=inc.target))

    return findings
