#!/usr/bin/env bash
# Pre-merge gate: the full ctest matrix under every sanitizer preset, plus
# the repo lint pass.  Maps onto tier-1 verify as follows: the `default`
# preset IS the tier-1 build/test command (same binary dir, same cache), so
# a green ci.sh implies a green tier-1 run.
#
# Usage: tools/ci.sh [preset ...]
#   With no arguments runs: default, asan-ubsan, tsan, then the lint target.
#   With arguments runs only the named configure/build/test presets.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("$@")
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(default asan-ubsan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==== [$preset] configure"
  cmake --preset "$preset"
  echo "==== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "==== lint"
cmake --build --preset default --target lint

echo "==== analyze"
# Baseline-gated: exits nonzero only on findings not in
# tools/analyze-baseline.json (see tools/README.md for the workflow).
cmake --build --preset default --target analyze

echo "==== perf-smoke"
# Reduced-size run of the entropy-kernel microbench, gated on >30%
# regression against the checked-in baseline (speedup is the gated,
# machine-portable metric; see tools/perf_check.py).
IUSTITIA_KERNEL_MIN_MS=60 ./build/bench/bench_entropy_kernel \
  build/BENCH_entropy_kernel.json
python3 tools/perf_check.py build/BENCH_entropy_kernel.json \
  bench/baselines/entropy_kernel.json

# Serving-runtime bench at reduced trace size, same gating scheme (rows
# keyed by shard count via the baseline's key_fields).
IUSTITIA_TRACE_PACKETS=25000 ./build/bench/bench_runtime \
  build/BENCH_runtime.json
python3 tools/perf_check.py build/BENCH_runtime.json \
  bench/baselines/runtime.json

echo "ci.sh: all presets green"
