// Configuration of the online Iustitia classifier (Fig. 1).
#ifndef IUSTITIA_CORE_CONFIG_H_
#define IUSTITIA_CORE_CONFIG_H_

#include <cstdint>
#include <vector>


namespace iustitia::core {

// Classification Database knobs (paper Section 4.5).
struct CdbOptions {
  // A flow is obsolete when t_now - t_last > n * lambda'.
  double inactivity_coefficient = 4.0;  // the paper's optimal n
  // lambda' for flows that have seen only one packet.
  double default_lambda = 0.5;  // seconds
  // Run the inactivity purge each time this many flows were inserted since
  // the last purge (paper: 5,000).
  std::size_t purge_trigger_flows = 5000;
  // Disable to reproduce the "CDB size w/o purging" series of Fig. 8.
  bool inactivity_purge_enabled = true;
  // FIN/RST-driven removal (can be disabled for ablation).
  bool fin_rst_removal_enabled = true;
  // Section 4.6 defense: periodically delete the CDB record of a flow that
  // has been classified for this long, forcing reclassification on fresh
  // mid-flow content (counters padding-prefix evasion).  0 disables.
  double reclassify_after_seconds = 0.0;
  // Hard record ceiling: an insert at the ceiling force-evicts the
  // least-recently-active record first (CdbStats::forced_evictions), so
  // resident memory stays bounded even when the purge heuristics lose.
  // 0 leaves the table unbounded (the paper's configuration).
  std::size_t max_records = 0;
};

// Online engine knobs.
struct EngineOptions {
  // Payload bytes buffered per new flow before classification (b).
  std::size_t buffer_size = 32;
  // Maximum application-layer header bytes to skip (T).  0 disables
  // skipping.  When stripping is enabled and a known header is detected,
  // the detected length is skipped instead of T.
  std::size_t header_threshold = 0;
  bool strip_known_headers = true;
  // Section 4.6 defense: additionally skip a per-flow random number of
  // bytes in [0, random_skip_max] before buffering, so an attacker cannot
  // know which window the classifier will see.  0 disables.
  std::size_t random_skip_max = 0;
  // Seed for the engine's per-flow randomness (random skip).
  std::uint64_t seed = 0x1057;
  // Classify on whatever is buffered once a flow has been quiet this long.
  double buffer_timeout_seconds = 5.0;
  CdbOptions cdb;
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_CONFIG_H_
