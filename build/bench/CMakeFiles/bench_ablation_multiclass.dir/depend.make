# Empty dependencies file for bench_ablation_multiclass.
# This may be replaced when dependencies are built.
