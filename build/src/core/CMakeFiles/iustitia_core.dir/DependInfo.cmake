
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cdb.cc" "src/core/CMakeFiles/iustitia_core.dir/cdb.cc.o" "gcc" "src/core/CMakeFiles/iustitia_core.dir/cdb.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/iustitia_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/iustitia_core.dir/engine.cc.o.d"
  "/root/repo/src/core/feature_extractor.cc" "src/core/CMakeFiles/iustitia_core.dir/feature_extractor.cc.o" "gcc" "src/core/CMakeFiles/iustitia_core.dir/feature_extractor.cc.o.d"
  "/root/repo/src/core/flow_model.cc" "src/core/CMakeFiles/iustitia_core.dir/flow_model.cc.o" "gcc" "src/core/CMakeFiles/iustitia_core.dir/flow_model.cc.o.d"
  "/root/repo/src/core/output_queues.cc" "src/core/CMakeFiles/iustitia_core.dir/output_queues.cc.o" "gcc" "src/core/CMakeFiles/iustitia_core.dir/output_queues.cc.o.d"
  "/root/repo/src/core/sharded_engine.cc" "src/core/CMakeFiles/iustitia_core.dir/sharded_engine.cc.o" "gcc" "src/core/CMakeFiles/iustitia_core.dir/sharded_engine.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/iustitia_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/iustitia_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/iustitia_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/iustitia_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/iustitia_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iustitia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/appproto/CMakeFiles/iustitia_appproto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
