// Classification metrics: confusion matrices and the per-class accuracy /
// misclassification breakdown the paper reports in Tables 1 and 2.
#ifndef IUSTITIA_ML_METRICS_H_
#define IUSTITIA_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace iustitia::ml {

// Row = actual class, column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int actual, int predicted);

  // Merges another matrix of the same dimension (for CV aggregation).
  void merge(const ConfusionMatrix& other);

  int num_classes() const noexcept { return num_classes_; }
  std::size_t count(int actual, int predicted) const;
  std::size_t total() const noexcept { return total_; }

  // Overall fraction of correct predictions (0 when empty).
  double accuracy() const noexcept;

  // Recall of one class: correct predictions / actual occurrences.
  double class_accuracy(int actual) const;

  // Fraction of `actual`-class samples predicted as `predicted`
  // (the off-diagonal "misclassification" cells of Table 1).
  double misclassification_rate(int actual, int predicted) const;

 private:
  int num_classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // num_classes x num_classes, row-major
};

// Mean of per-fold accuracies.
double mean_accuracy(const std::vector<ConfusionMatrix>& folds);

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_METRICS_H_
