#include "dpi/aho_corasick.h"

#include <deque>
#include <stdexcept>

namespace iustitia::dpi {

AhoCorasick::AhoCorasick(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)) {
  for (const std::string& p : patterns_) {
    if (p.empty()) {
      throw std::invalid_argument("AhoCorasick: empty pattern");
    }
  }

  // Trie construction.
  nodes_.emplace_back();
  for (auto& e : nodes_[0].next) e = -1;
  for (std::size_t pi = 0; pi < patterns_.size(); ++pi) {
    std::int32_t state = 0;
    for (const char ch : patterns_[pi]) {
      const auto byte = static_cast<std::uint8_t>(ch);
      if (nodes_[static_cast<std::size_t>(state)].next[byte] < 0) {
        nodes_[static_cast<std::size_t>(state)].next[byte] =
            static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
        for (auto& e : nodes_.back().next) e = -1;
      }
      state = nodes_[static_cast<std::size_t>(state)].next[byte];
    }
    nodes_[static_cast<std::size_t>(state)].outputs.push_back(
        static_cast<std::uint32_t>(pi));
  }

  // BFS failure-link construction; rewrite missing edges so scanning never
  // follows failure links at match time (a full goto function).
  std::deque<std::int32_t> queue;
  for (int b = 0; b < 256; ++b) {
    std::int32_t& edge = nodes_[0].next[b];
    if (edge < 0) {
      edge = 0;
    } else {
      nodes_[static_cast<std::size_t>(edge)].fail = 0;
      queue.push_back(edge);
    }
  }
  while (!queue.empty()) {
    const std::int32_t state = queue.front();
    queue.pop_front();
    Node& node = nodes_[static_cast<std::size_t>(state)];
    // Flatten output links: a state also emits everything its failure
    // state emits.
    const Node& fail_node = nodes_[static_cast<std::size_t>(node.fail)];
    node.outputs.insert(node.outputs.end(), fail_node.outputs.begin(),
                        fail_node.outputs.end());
    for (int b = 0; b < 256; ++b) {
      std::int32_t& edge = node.next[b];
      const std::int32_t via_fail =
          nodes_[static_cast<std::size_t>(node.fail)].next[b];
      if (edge < 0) {
        edge = via_fail;
      } else {
        nodes_[static_cast<std::size_t>(edge)].fail = via_fail;
        queue.push_back(edge);
      }
    }
  }
}

void AhoCorasick::scan(
    std::span<const std::uint8_t> text,
    const std::function<bool(const Match&)>& on_match) const {
  std::int32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = nodes_[static_cast<std::size_t>(state)].next[text[i]];
    const Node& node = nodes_[static_cast<std::size_t>(state)];
    for (const std::uint32_t pattern : node.outputs) {
      if (!on_match(Match{pattern, i + 1})) return;
    }
  }
}

void AhoCorasick::scan(
    std::string_view text,
    const std::function<bool(const Match&)>& on_match) const {
  scan(std::span<const std::uint8_t>(
           reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
       on_match);
}

std::vector<Match> AhoCorasick::find_all(
    std::span<const std::uint8_t> text) const {
  std::vector<Match> out;
  scan(text, [&](const Match& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

bool AhoCorasick::contains_any(std::span<const std::uint8_t> text) const {
  bool found = false;
  scan(text, [&](const Match&) {
    found = true;
    return false;  // stop at first hit
  });
  return found;
}

}  // namespace iustitia::dpi
