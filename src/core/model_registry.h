// RCU-style registry for zero-downtime model hot-swap.
//
// The control plane publishes retrained models into a live fleet of
// shard workers without stopping packet flow.  The protocol (DESIGN.md
// §11) splits hot and cold asymmetrically:
//
//   reader hot path   one relaxed load of the epoch counter per ring
//                     burst; nothing else — no lock, no refcount, no
//                     allocation while the epoch is unchanged
//   reader cold path  on an epoch change, take the registry mutex once:
//                     copy the current shared_ptr, install it into the
//                     shard's engine, report the crossed epoch
//   writer (publish)  swap the current pointer and version under the
//                     mutex, retire the old model, then release-store
//                     the bumped epoch — the store is what readers see
//
// Grace-period reclamation: a retired model is dropped from the registry
// once *every* shard has reported crossing a newer epoch (min_crossed).
// Because a shard installs the replacement — releasing its own reference
// — strictly before reporting, the registry's retired entry is the last
// reference by then and the old model is freed exactly once, never while
// any worker could still be classifying with it.  Shards that never
// report (e.g. a drained runtime) simply delay reclamation; they can
// never resurrect a retired model.
#ifndef IUSTITIA_CORE_MODEL_REGISTRY_H_
#define IUSTITIA_CORE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flow_model.h"
#include "util/thread_annotations.h"

namespace iustitia::core {

class ModelRegistry {
 public:
  // One registered reader slot per shard.  The initial model is published
  // at epoch 1 with swap_count() == 0.  Throws std::invalid_argument on
  // shards == 0 or a null model.
  ModelRegistry(std::size_t shards,
                std::shared_ptr<const FlowNatureModel> initial,
                std::string version);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // A coherent (model, epoch, version) triple as of one mutex hold.
  struct Published {
    std::shared_ptr<const FlowNatureModel> model;
    std::uint64_t epoch = 0;
    std::string version;
  };

  // Control-plane side: atomically replaces the current model, retires
  // the previous one, and release-stores the bumped epoch.  Returns the
  // new epoch.  Throws std::invalid_argument on a null model.
  std::uint64_t publish(std::shared_ptr<const FlowNatureModel> model,
                        std::string version);

  // Reader hot path: the epoch a reader compares against its local copy.
  // Relaxed is sufficient — it is only a change *hint*; the model itself
  // is re-read through current()'s mutex, which orders the data.
  std::uint64_t epoch_hint() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  // Reader cold path: the current triple.
  Published current() const;

  // Reader cold path: shard `shard` now runs the model of `epoch`.
  // Monotonic (an older epoch never rolls a shard's report back); drives
  // retired-model reclamation.
  void report_crossed(std::size_t shard, std::uint64_t epoch);

  // Smallest epoch any shard has reported (0 until every shard reported
  // at least once).
  std::uint64_t min_crossed() const;

  // Models retired but not yet reclaimed (grace period still open).
  std::size_t retired_count() const;

  // Publishes after construction — the operator-facing swap counter.
  std::uint64_t swap_count() const;

  std::string current_version() const;
  std::size_t shard_count() const noexcept { return shards_; }

 private:
  // Drops every retired entry whose grace period has closed.
  void reap_locked() IUSTITIA_REQUIRES(mu_);
  std::uint64_t min_crossed_locked() const IUSTITIA_REQUIRES(mu_);

  struct Retired {
    std::uint64_t epoch = 0;  // the epoch this model served under
    std::shared_ptr<const FlowNatureModel> model;
  };

  const std::size_t shards_;
  // Monotonic publication counter; stores release under mu_, hot readers
  // load relaxed as a change hint (see epoch_hint()).
  std::atomic<std::uint64_t> epoch_;  // analyze: atomic(publish)
  mutable util::Mutex mu_{"ModelRegistry::mu_"};
  std::shared_ptr<const FlowNatureModel> current_ IUSTITIA_GUARDED_BY(mu_);
  std::string version_ IUSTITIA_GUARDED_BY(mu_);
  std::vector<std::uint64_t> crossed_ IUSTITIA_GUARDED_BY(mu_);
  std::vector<Retired> retired_ IUSTITIA_GUARDED_BY(mu_);
  std::uint64_t swaps_ IUSTITIA_GUARDED_BY(mu_) = 0;
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_MODEL_REGISTRY_H_
