// Tests for the Aho-Corasick matcher and the IDS signature sets.
#include "dpi/aho_corasick.h"
#include "dpi/signature_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"

namespace iustitia::dpi {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(AhoCorasick, RejectsEmptyPattern) {
  EXPECT_THROW(AhoCorasick({""}), std::invalid_argument);
  EXPECT_THROW(AhoCorasick({"ok", ""}), std::invalid_argument);
}

TEST(AhoCorasick, SinglePatternAllOccurrences) {
  const AhoCorasick ac({"ab"});
  const auto matches = ac.find_all(bytes_of("xxabyabzab"));
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].end_offset, 4u);
  EXPECT_EQ(matches[1].end_offset, 7u);
  EXPECT_EQ(matches[2].end_offset, 10u);
  for (const Match& m : matches) EXPECT_EQ(m.pattern_index, 0u);
}

TEST(AhoCorasick, OverlappingPatterns) {
  // Classic example: he / she / his / hers on "ushers".
  const AhoCorasick ac({"he", "she", "his", "hers"});
  const auto matches = ac.find_all(bytes_of("ushers"));
  std::set<std::pair<std::size_t, std::size_t>> found;
  for (const Match& m : matches) found.insert({m.pattern_index, m.end_offset});
  EXPECT_TRUE(found.count({1, 4}));  // "she" ends at 4
  EXPECT_TRUE(found.count({0, 4}));  // "he" ends at 4 (suffix of she)
  EXPECT_TRUE(found.count({3, 6}));  // "hers" ends at 6
  EXPECT_EQ(matches.size(), 3u);
}

TEST(AhoCorasick, PatternsThatAreSuffixesOfEachOther) {
  const AhoCorasick ac({"a", "aa", "aaa"});
  const auto matches = ac.find_all(bytes_of("aaaa"));
  // "a" x4, "aa" x3, "aaa" x2 = 9 matches.
  EXPECT_EQ(matches.size(), 9u);
}

TEST(AhoCorasick, BinaryPatternsIncludingHighBytes) {
  std::string pattern;
  pattern.push_back(static_cast<char>(0xFF));
  pattern.push_back(static_cast<char>(0x00));
  pattern.push_back(static_cast<char>(0xD8));
  const AhoCorasick ac({pattern});
  std::vector<std::uint8_t> text{0x01, 0xFF, 0x00, 0xD8, 0x02, 0xFF, 0x00,
                                 0xD8};
  EXPECT_EQ(ac.find_all(text).size(), 2u);
}

TEST(AhoCorasick, ContainsAnyStopsEarly) {
  const AhoCorasick ac({"needle"});
  std::vector<std::uint8_t> hay = bytes_of("xx needle yy");
  EXPECT_TRUE(ac.contains_any(hay));
  EXPECT_FALSE(ac.contains_any(bytes_of("nothing here")));
}

TEST(AhoCorasick, ScanCallbackEarlyTermination) {
  const AhoCorasick ac({"a"});
  int calls = 0;
  ac.scan(std::string_view("aaaa"), [&](const Match&) {
    ++calls;
    return calls < 2;
  });
  EXPECT_EQ(calls, 2);
}

TEST(AhoCorasick, MatchesAgainstNaiveSearch) {
  // Property: automaton results equal brute-force substring search.
  util::Rng rng(3);
  std::vector<std::string> patterns;
  for (int i = 0; i < 12; ++i) {
    std::string p(static_cast<std::size_t>(rng.uniform_int(1, 4)), 'x');
    for (char& c : p) c = static_cast<char>('a' + rng.next_below(3));
    patterns.push_back(p);
  }
  // Dedup (duplicates would double-report; builder keeps them distinct).
  std::sort(patterns.begin(), patterns.end());
  patterns.erase(std::unique(patterns.begin(), patterns.end()),
                 patterns.end());
  const AhoCorasick ac(patterns);

  std::string text(500, 'x');
  for (char& c : text) c = static_cast<char>('a' + rng.next_below(3));

  std::size_t naive = 0;
  for (const std::string& p : patterns) {
    for (std::size_t at = 0; at + p.size() <= text.size(); ++at) {
      naive += (text.compare(at, p.size(), p) == 0);
    }
  }
  EXPECT_EQ(ac.find_all(bytes_of(text)).size(), naive);
}

TEST(AhoCorasick, StateCountBounded) {
  const AhoCorasick ac({"abc", "abd", "x"});
  // root + a,ab,abc,abd + x = 6.
  EXPECT_EQ(ac.state_count(), 6u);
}

TEST(SignatureSets, GeneratedCountsAndShapes) {
  util::Rng rng(4);
  const auto text_sigs = generate_text_signatures(50, rng);
  const auto binary_sigs = generate_binary_signatures(50, rng);
  EXPECT_EQ(text_sigs.size(), 50u);
  EXPECT_EQ(binary_sigs.size(), 50u);
  for (const auto& s : text_sigs) EXPECT_GE(s.size(), 3u);
  for (const auto& s : binary_sigs) {
    EXPECT_GE(s.size(), 4u);
    EXPECT_LE(s.size(), 12u);
  }
}

TEST(SignatureEngine, CompilesAndMatches) {
  util::Rng rng(5);
  SignatureEngine engine = SignatureEngine::generate(100, 100, rng);
  EXPECT_EQ(engine.text_rule_count(), 100u);
  EXPECT_EQ(engine.binary_rule_count(), 100u);

  // A payload embedding a known text rule must match via both the text
  // and the combined matcher.
  const std::string rule = engine.text_matcher().pattern(7);
  const std::string payload = "GET /x HTTP/1.1 " + rule + " trailing";
  const std::vector<std::uint8_t> bytes(payload.begin(), payload.end());
  EXPECT_TRUE(engine.text_matcher().contains_any(bytes));
  EXPECT_TRUE(engine.combined_matcher().contains_any(bytes));
}

}  // namespace
}  // namespace iustitia::dpi
