#include "datagen/binary_gen.h"

#include <algorithm>
#include <array>
#include <string>

#include "datagen/lz77.h"
#include "datagen/markov_text.h"
#include "datagen/text_gen.h"

namespace iustitia::datagen {

namespace {

void append(std::vector<std::uint8_t>& out, std::initializer_list<int> bytes) {
  for (const int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  append(out, {static_cast<int>(v & 0xFF), static_cast<int>((v >> 8) & 0xFF),
               static_cast<int>((v >> 16) & 0xFF),
               static_cast<int>((v >> 24) & 0xFF)});
}

// Machine-code-like byte stream: a small set of "hot opcodes" dominates,
// interleaved with register/immediate bytes of wider spread — reproducing
// the skewed-but-wide byte histogram of compiled code.
void append_code(std::vector<std::uint8_t>& out, std::size_t n,
                 util::Rng& rng) {
  static constexpr std::uint8_t kHotOpcodes[] = {
      0x55, 0x48, 0x89, 0x8B, 0xE8, 0xC3, 0x83, 0x85, 0xC0, 0x5D,
      0x74, 0x75, 0x0F, 0x31, 0x01, 0x41, 0xFF, 0x8D, 0x63, 0xF4};
  for (std::size_t i = 0; i < n; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.55) {
      out.push_back(kHotOpcodes[rng.next_below(std::size(kHotOpcodes))]);
    } else if (roll < 0.75) {
      // ModRM/SIB-like byte, moderately spread.
      out.push_back(static_cast<std::uint8_t>(rng.next_below(64) * 4 +
                                              rng.next_below(4)));
    } else if (roll < 0.87) {
      // Small immediate.
      out.push_back(static_cast<std::uint8_t>(rng.next_below(32)));
    } else {
      // Address byte: anything.
      out.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
  }
}

// Data-segment-like bytes: zero runs, repeated words, small constants.
void append_data_segment(std::vector<std::uint8_t>& out, std::size_t n,
                         util::Rng& rng) {
  while (n > 0) {
    const double roll = rng.uniform();
    if (roll < 0.4) {
      const std::size_t run =
          std::min<std::size_t>(n, static_cast<std::size_t>(
                                       rng.uniform_int(4, 32)));
      out.insert(out.end(), run, 0x00);
      n -= run;
    } else if (roll < 0.7) {
      // Repeated 4-byte pattern (vtable/offset tables).
      std::uint32_t word = static_cast<std::uint32_t>(rng.next_below(1 << 16));
      const std::size_t reps = std::min<std::size_t>(
          n / 4, static_cast<std::size_t>(rng.uniform_int(2, 8)));
      for (std::size_t r = 0; r < reps; ++r) {
        append_u32(out, word);
        word += static_cast<std::uint32_t>(rng.uniform_int(4, 64));
      }
      n -= reps * 4;
      if (reps == 0) {
        out.push_back(0);
        --n;
      }
    } else {
      out.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
      --n;
    }
  }
}

void append_string_table(std::vector<std::uint8_t>& out, std::size_t n,
                         util::Rng& rng) {
  std::size_t written = 0;
  while (written < n) {
    const std::string word = random_word(rng, 3, 12);
    for (const char c : word) {
      if (written >= n) break;
      out.push_back(static_cast<std::uint8_t>(c));
      ++written;
    }
    if (written < n) {
      out.push_back(0x00);
      ++written;
    }
  }
}

}  // namespace

std::vector<std::uint8_t> generate_executable(std::size_t size,
                                              util::Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(size + 64);
  // ELF-like identification + header fields.
  append(out, {0x7F, 'E', 'L', 'F', 2, 1, 1, 0});
  out.insert(out.end(), 8, 0x00);
  append_u32(out, 0x3E0002);               // type/machine
  append_u32(out, 1);                      // version
  append_u32(out, static_cast<std::uint32_t>(rng.next_below(1 << 24)));  // entry
  append_u32(out, 64);                     // phoff
  while (out.size() < 64) out.push_back(0);

  const std::size_t body = size > out.size() ? size - out.size() : 0;
  const std::size_t code = static_cast<std::size_t>(0.55 * static_cast<double>(body));
  const std::size_t data = static_cast<std::size_t>(0.30 * static_cast<double>(body));
  append_code(out, code, rng);
  append_data_segment(out, data, rng);
  if (out.size() < size) append_string_table(out, size - out.size(), rng);
  out.resize(size);
  return out;
}

std::vector<std::uint8_t> generate_image(std::size_t size, util::Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(size + 16);
  // SOI + APP0 "JFIF".
  append(out, {0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, 'J', 'F', 'I', 'F', 0x00,
               0x01, 0x02, 0x00, 0x00, 0x48, 0x00, 0x48, 0x00, 0x00});
  // Two quantization tables: monotone-ish small values.
  for (int t = 0; t < 2; ++t) {
    append(out, {0xFF, 0xDB, 0x00, 0x43, t});
    for (int i = 0; i < 64; ++i) {
      out.push_back(static_cast<std::uint8_t>(2 + i / 4 +
                                              rng.uniform_int(0, 3)));
    }
  }
  // SOF/SOS stubs.
  append(out, {0xFF, 0xC0, 0x00, 0x11, 0x08, 0x02, 0x00, 0x03, 0x00, 0x03,
               0x01, 0x22, 0x00, 0x02, 0x11, 0x01, 0x03, 0x11, 0x01});
  append(out, {0xFF, 0xDA, 0x00, 0x0C, 0x03, 0x01, 0x00, 0x02, 0x11, 0x03,
               0x11, 0x00, 0x3F, 0x00});
  // Entropy-coded scan: near-uniform bytes with JPEG's FF->FF00 stuffing and
  // periodic restart markers.
  std::size_t since_restart = 0;
  int restart_index = 0;
  while (out.size() + 2 < size) {
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    out.push_back(b);
    if (b == 0xFF) out.push_back(0x00);
    if (++since_restart >= 1024) {
      append(out, {0xFF, 0xD0 + (restart_index & 7)});
      ++restart_index;
      since_restart = 0;
    }
  }
  append(out, {0xFF, 0xD9});  // EOI
  out.resize(size, 0x00);
  return out;
}

std::vector<std::uint8_t> generate_media(std::size_t size, util::Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(size + 64);
  append(out, {'R', 'I', 'F', 'F'});
  append_u32(out, static_cast<std::uint32_t>(size));
  append(out, {'A', 'V', 'I', ' '});
  std::uint32_t frame = 0;
  while (out.size() < size) {
    // Frame header: fourcc + counter + length.
    append(out, {'0', '0', 'd', 'c'});
    append_u32(out, frame++);
    const std::size_t payload = static_cast<std::size_t>(
        rng.uniform_int(256, 2048));
    append_u32(out, static_cast<std::uint32_t>(payload));
    // Compressed-looking payload: LZ77 over a noisy-but-structured frame.
    std::vector<std::uint8_t> raw(payload * 2);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      // Smooth "pixel" field: neighboring values correlate.
      raw[i] = static_cast<std::uint8_t>(
          (i > 0 ? raw[i - 1] : 128) + rng.uniform_int(-6, 6));
    }
    const std::vector<std::uint8_t> packed = lz77_compress(raw);
    const std::size_t take = std::min(packed.size(), payload);
    out.insert(out.end(), packed.begin(),
               packed.begin() + static_cast<std::ptrdiff_t>(take));
  }
  out.resize(size);
  return out;
}

std::vector<std::uint8_t> generate_archive(std::size_t size, util::Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(size + 64);
  while (out.size() < size) {
    // Member header (PK-like local file header).
    append(out, {0x50, 0x4B, 0x03, 0x04, 0x14, 0x00, 0x00, 0x00, 0x08, 0x00});
    const std::string name =
        random_word(rng, 4, 10) + "/" + random_word(rng, 4, 10) + ".txt";
    append_u32(out, static_cast<std::uint32_t>(rng.next_below(1u << 31)));
    out.push_back(static_cast<std::uint8_t>(name.size()));
    out.push_back(0);
    out.insert(out.end(), name.begin(), name.end());
    // Genuinely compressed member content.
    const std::size_t member = static_cast<std::size_t>(
        rng.uniform_int(2048, 8192));
    const std::vector<std::uint8_t> plain =
        rng.chance(0.5) ? generate_prose(member, rng)
                        : generate_source_code(member, rng);
    const std::vector<std::uint8_t> packed = lz77_compress(plain);
    append_u32(out, static_cast<std::uint32_t>(packed.size()));
    out.insert(out.end(), packed.begin(), packed.end());
  }
  out.resize(size);
  return out;
}

std::vector<std::uint8_t> generate_pdf(std::size_t size, util::Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(size + 64);
  const std::string header = "%PDF-1.4\n%\xE2\xE3\xCF\xD3\n";
  out.insert(out.end(), header.begin(), header.end());
  int object = 1;
  while (out.size() < size) {
    const std::string dict_open =
        std::to_string(object) + " 0 obj\n<< /Length " +
        std::to_string(rng.uniform_int(512, 4096)) +
        " /Filter /FlateDecode >>\nstream\n";
    out.insert(out.end(), dict_open.begin(), dict_open.end());
    const std::size_t member = static_cast<std::size_t>(
        rng.uniform_int(1024, 6144));
    const std::vector<std::uint8_t> plain = generate_prose(member, rng);
    const std::vector<std::uint8_t> packed = lz77_compress(plain);
    out.insert(out.end(), packed.begin(), packed.end());
    const std::string dict_close = "\nendstream\nendobj\n";
    out.insert(out.end(), dict_close.begin(), dict_close.end());
    ++object;
  }
  out.resize(size);
  return out;
}

}  // namespace iustitia::datagen
