#include "util/sha1.h"

#include <cstring>

namespace iustitia::util {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

std::uint64_t Sha1Digest::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

std::string Sha1Digest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Sha1::Sha1() noexcept { reset(); }

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t need = 64 - buffer_len_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1Digest Sha1::digest() const noexcept {
  Sha1 copy = *this;  // finalize a copy so callers may continue absorbing
  const std::uint64_t bit_len = copy.total_len_ * 8;

  std::uint8_t pad = 0x80;
  copy.update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (copy.buffer_len_ != 56) {
    copy.update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  copy.update(std::span<const std::uint8_t>(len_bytes, 8));

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out.bytes[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(copy.h_[i] >> 24);
    out.bytes[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(copy.h_[i] >> 16);
    out.bytes[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(copy.h_[i] >> 8);
    out.bytes[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(copy.h_[i]);
  }
  return out;
}

Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept {
  Sha1 h;
  h.update(data);
  return h.digest();
}

Sha1Digest sha1(std::string_view data) noexcept {
  Sha1 h;
  h.update(data);
  return h.digest();
}

}  // namespace iustitia::util
