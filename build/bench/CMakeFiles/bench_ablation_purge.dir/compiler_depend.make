# Empty compiler generated dependencies file for bench_ablation_purge.
# This may be replaced when dependencies are built.
