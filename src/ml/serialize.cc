#include "ml/serialize.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace iustitia::ml {

namespace {

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected) {
    throw std::runtime_error("model parse error: expected '" + expected +
                             "', got '" + token + "'");
  }
}

}  // namespace

void save_tree(const DecisionTree& tree, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "cart-v1 " << tree.num_classes() << ' ' << tree.feature_count() << ' '
     << tree.node_count() << '\n';
  for (const auto& node : tree.nodes()) {
    os << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
       << node.right << ' ' << node.label << ' ' << node.samples << ' '
       << node.errors << ' ' << node.impurity << '\n';
  }
}

DecisionTree load_tree(std::istream& is) {
  expect_token(is, "cart-v1");
  int num_classes = 0;
  std::size_t feature_count = 0, node_count = 0;
  if (!(is >> num_classes >> feature_count >> node_count)) {
    throw std::runtime_error("model parse error: cart header");
  }
  std::vector<DecisionTree::Node> nodes(node_count);
  for (auto& node : nodes) {
    if (!(is >> node.feature >> node.threshold >> node.left >> node.right >>
          node.label >> node.samples >> node.errors >> node.impurity)) {
      throw std::runtime_error("model parse error: cart node");
    }
  }
  DecisionTree tree;
  tree.restore(std::move(nodes), num_classes, feature_count);
  return tree;
}

namespace {

const char* kernel_name(KernelType kernel) {
  switch (kernel) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "poly";
  }
  return "?";
}

void save_binary_svm(const BinarySvm& svm, std::ostream& os) {
  const SvmParams& p = svm.params();
  os << "svm " << kernel_name(p.kernel) << ' ' << p.gamma << ' ' << p.coef0
     << ' ' << p.degree << ' ' << p.c << ' ' << svm.bias() << ' '
     << svm.support_vector_count() << '\n';
  const auto& svs = svm.support_vectors();
  const auto& coefs = svm.coefficients();
  for (std::size_t i = 0; i < svs.size(); ++i) {
    os << coefs[i];
    for (const double v : svs[i]) os << ' ' << v;
    os << '\n';
  }
}

BinarySvm load_binary_svm(std::istream& is, std::size_t feature_count) {
  expect_token(is, "svm");
  std::string kernel_token;
  SvmParams params;
  double bias = 0.0;
  std::size_t sv_count = 0;
  if (!(is >> kernel_token >> params.gamma >> params.coef0 >> params.degree >>
        params.c >> bias >> sv_count)) {
    throw std::runtime_error("model parse error: svm header");
  }
  params.kernel = kernel_token == "rbf"    ? KernelType::kRbf
                  : kernel_token == "poly" ? KernelType::kPolynomial
                                           : KernelType::kLinear;
  std::vector<std::vector<double>> svs(sv_count);
  std::vector<double> coefs(sv_count);
  for (std::size_t i = 0; i < sv_count; ++i) {
    if (!(is >> coefs[i])) {
      throw std::runtime_error("model parse error: svm coefficient");
    }
    svs[i].resize(feature_count);
    for (double& v : svs[i]) {
      if (!(is >> v)) {
        throw std::runtime_error("model parse error: support vector");
      }
    }
  }
  BinarySvm svm;
  svm.restore(std::move(svs), std::move(coefs), bias, params);
  return svm;
}

}  // namespace

void save_dag_svm(const DagSvm& model, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  std::size_t feature_count = 0;
  for (const auto& m : model.machines()) {
    if (!m.support_vectors().empty()) {
      feature_count = m.support_vectors().front().size();
      break;
    }
  }
  os << "dagsvm-v1 " << model.num_classes() << ' ' << feature_count << '\n';
  for (const auto& m : model.machines()) save_binary_svm(m, os);
}

DagSvm load_dag_svm(std::istream& is) {
  expect_token(is, "dagsvm-v1");
  int num_classes = 0;
  std::size_t feature_count = 0;
  if (!(is >> num_classes >> feature_count)) {
    throw std::runtime_error("model parse error: dagsvm header");
  }
  const std::size_t machine_count = static_cast<std::size_t>(num_classes) *
                                    static_cast<std::size_t>(num_classes - 1) /
                                    2;
  std::vector<BinarySvm> machines;
  machines.reserve(machine_count);
  for (std::size_t i = 0; i < machine_count; ++i) {
    machines.push_back(load_binary_svm(is, feature_count));
  }
  DagSvm model;
  model.restore(num_classes, std::move(machines));
  return model;
}

void save_scaler(const MinMaxScaler& scaler, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "scaler-v1 " << scaler.mins().size() << '\n';
  for (const double v : scaler.mins()) os << v << ' ';
  os << '\n';
  for (const double v : scaler.maxs()) os << v << ' ';
  os << '\n';
}

MinMaxScaler load_scaler(std::istream& is) {
  expect_token(is, "scaler-v1");
  std::size_t dims = 0;
  if (!(is >> dims)) throw std::runtime_error("model parse error: scaler");
  std::vector<double> mins(dims), maxs(dims);
  for (double& v : mins) {
    if (!(is >> v)) throw std::runtime_error("model parse error: scaler mins");
  }
  for (double& v : maxs) {
    if (!(is >> v)) throw std::runtime_error("model parse error: scaler maxs");
  }
  MinMaxScaler scaler;
  scaler.restore(std::move(mins), std::move(maxs));
  return scaler;
}

}  // namespace iustitia::ml
