// Reproduces Figure 7: classification accuracy with (delta, epsilon)-
// estimated entropy vectors, swept over the two estimator knobs, for SVM
// (re-selected gamma=10, C=1000) and CART, trained with the H_b' method at
// b' = 1024 (Section 4.4.2).
//
// Paper shape: estimation costs a few points of accuracy (SVM 86 -> ~83%,
// CART 79 -> ~76%); accuracy degrades as epsilon grows very large, and the
// encrypted/text classes tolerate estimation better than binary.
#include "bench/bench_common.h"

#include <algorithm>
#include <iostream>
#include <span>
#include <vector>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

struct Cell {
  double total = 0.0;
  double per_class[3] = {};
};

Cell evaluate(const std::vector<datagen::FileSample>& train_corpus,
              const std::vector<datagen::FileSample>& test_corpus,
              core::Backend backend, double epsilon, double delta,
              std::size_t b) {
  core::TrainerOptions options;
  options.backend = backend;
  options.widths = backend == core::Backend::kCart
                       ? entropy::cart_preferred_widths()
                       : entropy::svm_preferred_widths();
  options.method = core::TrainingMethod::kRandomOffset;
  options.header_threshold = 256;
  options.buffer_size = b;
  options.use_estimation = true;
  options.estimator = {.epsilon = epsilon, .delta = delta};
  options.svm.gamma = 10.0;  // the paper's re-selected model for estimation
  options.svm.c = 1000.0;
  core::FlowNatureModel model = core::train_model(train_corpus, options);

  Cell cell;
  std::size_t correct = 0;
  std::size_t class_correct[3] = {}, class_total[3] = {};
  for (const auto& file : test_corpus) {
    const std::span<const std::uint8_t> prefix(
        file.bytes.data(), std::min(b, file.bytes.size()));
    const auto label = model.classify(prefix).label;
    const int actual = static_cast<int>(file.label);
    ++class_total[actual];
    if (label == file.label) {
      ++correct;
      ++class_correct[actual];
    }
  }
  cell.total =
      static_cast<double>(correct) / static_cast<double>(test_corpus.size());
  for (int c = 0; c < 3; ++c) {
    cell.per_class[c] = class_total[c] == 0
                            ? 0.0
                            : static_cast<double>(class_correct[c]) /
                                  static_cast<double>(class_total[c]);
  }
  return cell;
}

int run() {
  banner("Fig. 7: accuracy over the (epsilon, delta) estimator grid",
         "SVM(gamma=10) ~83%, CART ~76% with estimated vectors at b'=1024");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 40);
  const std::size_t b = 1024;
  const auto corpus = standard_corpus(files);
  std::vector<datagen::FileSample> train_corpus, test_corpus;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    (i % 2 == 0 ? train_corpus : test_corpus).push_back(corpus[i]);
  }

  const double epsilons[] = {0.15, 0.25, 0.5, 1.0};
  const double deltas[] = {0.1, 0.5, 0.75};

  for (const core::Backend backend :
       {core::Backend::kSvm, core::Backend::kCart}) {
    std::cout << "-- Fig. 7(" << (backend == core::Backend::kSvm ? 'i' : 'i')
              << (backend == core::Backend::kSvm ? ") SVM with RBF kernel"
                                                 : "i) Decision Tree (CART)")
              << " --\n";
    util::Table table({"epsilon", "delta", "text acc", "binary acc",
                       "encrypted acc", "total acc"});
    double best = 0.0;
    for (const double eps : epsilons) {
      for (const double delta : deltas) {
        const Cell cell =
            evaluate(train_corpus, test_corpus, backend, eps, delta, b);
        best = std::max(best, cell.total);
        table.add_row({util::fmt(eps, 2), util::fmt(delta, 2),
                       util::fmt_percent(cell.per_class[0]),
                       util::fmt_percent(cell.per_class[1]),
                       util::fmt_percent(cell.per_class[2]),
                       util::fmt_percent(cell.total)});
      }
    }
    table.render(std::cout);
    std::cout << "best total accuracy on the grid: "
              << util::fmt_percent(best) << "  (paper: "
              << (backend == core::Backend::kSvm ? "83% with gamma=10"
                                                 : "76.03%")
              << ")\n\n";
  }
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
