#include "ml/feature_selection.h"

#include <algorithm>

#include "ml/scaler.h"

namespace iustitia::ml {

namespace {

// Picks the `target` highest-vote feature indices (ties broken by lower
// index, which for entropy vectors prefers narrower gram widths — the same
// preference the paper applies in Section 4.1).
std::vector<std::size_t> top_votes(const std::vector<double>& votes,
                                   std::size_t target) {
  std::vector<std::size_t> order(votes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (votes[a] != votes[b]) return votes[a] > votes[b];
                     return a < b;
                   });
  if (order.size() > target) order.resize(target);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

FeatureSelectionResult cart_vote_selection(const Dataset& data,
                                           std::size_t folds,
                                           double max_accuracy_drop,
                                           std::size_t target_features,
                                           const CartParams& params,
                                           util::Rng& rng) {
  FeatureSelectionResult result;
  result.votes.assign(data.feature_count(), 0.0);

  const auto fold_rows = stratified_folds(data, folds, rng);
  for (std::size_t f = 0; f < folds; ++f) {
    const Split split = stratified_fold_split(data, fold_rows, f);
    DecisionTree tree;
    tree.train(split.train, params);
    tree.prune_to_accuracy(split.test, max_accuracy_drop);
    // Weight each surviving feature by its (pruned-tree) importance so that
    // features closer to the root — "higher in the tree", as the paper puts
    // it — carry more of the vote.
    const std::vector<double> importance = tree.feature_importance();
    for (const std::size_t used : tree.features_used()) {
      result.votes[used] += 1.0 + importance[used];
    }
  }
  result.selected = top_votes(result.votes, target_features);
  return result;
}

FeatureSelectionResult sequential_forward_selection(
    const Dataset& data, std::size_t folds, std::size_t target_features,
    const SvmParams& params, double eval_train_fraction, util::Rng& rng) {
  FeatureSelectionResult result;
  result.votes.assign(data.feature_count(), 0.0);
  const std::size_t total = data.feature_count();
  const std::size_t want = std::min(target_features, total);

  for (std::size_t f = 0; f < folds; ++f) {
    util::Rng fold_rng = rng.fork();
    std::vector<std::size_t> chosen;
    std::vector<bool> in_set(total, false);
    while (chosen.size() < want) {
      std::size_t best_feature = total;
      double best_accuracy = -1.0;
      for (std::size_t candidate = 0; candidate < total; ++candidate) {
        if (in_set[candidate]) continue;
        std::vector<std::size_t> trial = chosen;
        trial.push_back(candidate);
        std::sort(trial.begin(), trial.end());
        const Dataset projected = data.project(trial);
        util::Rng eval_rng = fold_rng.fork();
        const Split split =
            stratified_holdout(projected, eval_train_fraction, eval_rng);
        MinMaxScaler scaler;
        scaler.fit(split.train);
        DagSvm model;
        model.train(scaler.transform(split.train), params);
        const double accuracy =
            model.evaluate(scaler.transform(split.test)).accuracy();
        if (accuracy > best_accuracy) {
          best_accuracy = accuracy;
          best_feature = candidate;
        }
      }
      if (best_feature == total) break;
      chosen.push_back(best_feature);
      in_set[best_feature] = true;
    }
    for (const std::size_t c : chosen) result.votes[c] += 1.0;
  }
  result.selected = top_votes(result.votes, want);
  return result;
}

}  // namespace iustitia::ml
