// Fuzz harness for the pcap reader and frame decoder (hostile input).
//
// Contract under test: net::PcapReader and net::decode_frame must
// reject arbitrary byte streams with std::runtime_error (or finish
// cleanly) — never crash, never FATAL, never allocate absurdly (the
// reader clamps per-record allocations to PcapReader::kMaxRecordBytes
// whatever the record header claims).
//
// Two build modes:
//   - IUSTITIA_FUZZ_LIBFUZZER (Clang + `fuzz` preset): a real libFuzzer
//     entry point; run `fuzz_pcap tests/fuzz/pcap_corpus` to fuzz.
//   - otherwise (GCC, every regular preset): a corpus-regression driver
//     whose main() replays each argument (file, or directory of files)
//     through the same harness once — so the checked-in corpus of
//     truncated/garbage captures is exercised by plain ctest under
//     default, ASan/UBSan, and TSan builds alike.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

#include "net/pcap.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Whole-file surface: global header validation, record framing,
  // truncation handling, and the per-record decode loop.
  {
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(data), size));
    try {
      iustitia::net::PcapReader reader(is);
      while (reader.next().has_value()) {
      }
    } catch (const std::runtime_error&) {
      // Rejected: the documented failure mode for corrupt input.
    }
  }
  // Frame surface: the Ethernet/IPv4/IPv6 decoder on the raw bytes.
  try {
    (void)iustitia::net::decode_frame(
        std::span<const std::uint8_t>(data, size), 0.0);
  } catch (const std::runtime_error&) {
  }
  return 0;
}

#ifndef IUSTITIA_FUZZ_LIBFUZZER

#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <vector>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fuzz_pcap <corpus-file-or-dir>...\n";
    return 2;
  }
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  std::size_t ran = 0;
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << path << '\n';
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++ran;
  }
  std::cout << "fuzz_pcap: replayed " << ran << " corpus inputs, no crash\n";
  return 0;
}

#endif  // IUSTITIA_FUZZ_LIBFUZZER
