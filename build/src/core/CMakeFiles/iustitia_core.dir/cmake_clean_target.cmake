file(REMOVE_RECURSE
  "libiustitia_core.a"
)
