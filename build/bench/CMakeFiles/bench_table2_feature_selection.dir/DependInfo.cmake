
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_feature_selection.cc" "bench/CMakeFiles/bench_table2_feature_selection.dir/bench_table2_feature_selection.cc.o" "gcc" "bench/CMakeFiles/bench_table2_feature_selection.dir/bench_table2_feature_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/iustitia_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iustitia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iustitia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/appproto/CMakeFiles/iustitia_appproto.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/iustitia_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/iustitia_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/dpi/CMakeFiles/iustitia_dpi.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/iustitia_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
