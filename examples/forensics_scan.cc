// Forensics: the paper's law-enforcement use case (Section 1.1).
// Identify text flows on the wire and run keyword searches only on them
// (human communications), while logging binary flows for copyright
// enforcement review — without deep-inspecting everything.
//
// Run:  ./forensics_scan
#include <iostream>
#include <string>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "dpi/aho_corasick.h"
#include "net/flow_table.h"
#include "net/trace_gen.h"
#include "util/table.h"

using namespace iustitia;

int main() {
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 60;
  corpus_options.seed = 31;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions trainer;
  trainer.backend = core::Backend::kCart;
  trainer.widths = entropy::cart_preferred_widths();
  trainer.method = core::TrainingMethod::kFirstBytes;
  trainer.buffer_size = 64;
  core::FlowNatureModel model = core::train_model(corpus, trainer);

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 40000;
  trace_options.seed = 32;
  const net::Trace trace = net::generate_trace(trace_options);

  core::EngineOptions engine_options;
  engine_options.buffer_size = 64;
  core::Iustitia engine(std::move(model), engine_options);
  net::FlowTable flows(2048);  // retains flow prefixes for the evidence log
  for (const net::Packet& packet : trace.packets) {
    engine.on_packet(packet);
    flows.add(packet);
  }
  engine.flush_all();

  // Keyword sweep over *text* flows only, via the Aho-Corasick matcher
  // (all keywords in one pass per flow).
  const dpi::AhoCorasick keywords(
      {"question", "network", "account", "schedule"});
  std::size_t text_flows = 0, binary_flows = 0, hits = 0;
  std::uint64_t scanned_bytes = 0, skipped_bytes = 0;
  for (const auto& [key, record] : flows.flows()) {
    const auto label = engine.label_of(key);
    if (!label.has_value()) continue;
    if (*label == datagen::FileClass::kText) {
      ++text_flows;
      scanned_bytes += record.prefix.size();
      hits += keywords.contains_any(record.prefix);
    } else {
      skipped_bytes += record.prefix.size();
      binary_flows += (*label == datagen::FileClass::kBinary);
    }
  }

  util::Table table({"metric", "value"});
  table.add_row({"flows classified",
                 std::to_string(engine.stats().flows_classified)});
  table.add_row({"text flows keyword-scanned", std::to_string(text_flows)});
  table.add_row({"flows with keyword hits", std::to_string(hits)});
  table.add_row({"binary flows logged for review",
                 std::to_string(binary_flows)});
  table.add_row({"bytes scanned",
                 util::fmt_bytes(static_cast<double>(scanned_bytes))});
  table.add_row({"bytes skipped (non-text)",
                 util::fmt_bytes(static_cast<double>(skipped_bytes))});
  table.render(std::cout);

  std::cout << "\nkeyword search ran on "
            << util::fmt_percent(
                   static_cast<double>(scanned_bytes) /
                   static_cast<double>(scanned_bytes + skipped_bytes))
            << " of the retained bytes — the rest was excluded by nature "
               "classification alone.\n";
  return 0;
}
