#include "appproto/header_stripper.h"

#include <cctype>
#include <string_view>

namespace iustitia::appproto {

namespace {

std::string_view as_text(std::span<const std::uint8_t> bytes) noexcept {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool is_http_start(std::string_view t) noexcept {
  return starts_with(t, "HTTP/1.") || starts_with(t, "GET ") ||
         starts_with(t, "POST ") || starts_with(t, "HEAD ") ||
         starts_with(t, "PUT ") || starts_with(t, "DELETE ") ||
         starts_with(t, "OPTIONS ");
}

// One CRLF-terminated line starting at `at`; npos length when no CRLF yet.
std::size_t line_length(std::string_view text, std::size_t at) noexcept {
  const std::size_t end = text.find("\r\n", at);
  return end == std::string_view::npos ? std::string_view::npos
                                       : end + 2 - at;
}

bool is_smtp_line(std::string_view line) noexcept {
  if (line.size() >= 4 && std::isdigit(static_cast<unsigned char>(line[0])) &&
      std::isdigit(static_cast<unsigned char>(line[1])) &&
      std::isdigit(static_cast<unsigned char>(line[2])) &&
      (line[3] == ' ' || line[3] == '-')) {
    return true;  // reply line, e.g. "250-..." / "354 ..."
  }
  return starts_with(line, "EHLO ") || starts_with(line, "HELO ") ||
         starts_with(line, "MAIL FROM:") || starts_with(line, "RCPT TO:") ||
         starts_with(line, "DATA");
}

bool is_pop3_line(std::string_view line) noexcept {
  return starts_with(line, "+OK") || starts_with(line, "-ERR") ||
         starts_with(line, "USER ") || starts_with(line, "PASS ") ||
         starts_with(line, "RETR ") || starts_with(line, "LIST") ||
         starts_with(line, "STAT") || starts_with(line, "DELE ") ||
         starts_with(line, "QUIT");
}

bool is_imap_line(std::string_view line) noexcept {
  if (starts_with(line, "* ")) return true;
  // Tagged line: short alphanumeric tag followed by a space.
  std::size_t i = 0;
  while (i < line.size() && i < 8 &&
         std::isalnum(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  return i > 0 && i < line.size() && line[i] == ' ';
}

// Walks CRLF lines while `matches` accepts them; fills the detection.
HeaderDetection scan_lines(std::string_view text, AppProtocol protocol,
                           bool (*matches)(std::string_view)) noexcept {
  HeaderDetection det;
  det.protocol = protocol;
  std::size_t at = 0;
  while (at < text.size()) {
    const std::size_t len = line_length(text, at);
    if (len == std::string_view::npos) {
      // Final partial line: if it still looks like protocol chatter we
      // cannot tell where the header ends yet.
      if (matches(text.substr(at))) {
        det.header_length = text.size();
        det.header_complete = false;
        return det;
      }
      break;
    }
    if (!matches(text.substr(at, len - 2))) break;
    at += len;
  }
  det.header_length = at;
  det.header_complete = true;
  return det;
}

}  // namespace

HeaderDetection detect_header(std::span<const std::uint8_t> prefix) noexcept {
  HeaderDetection det;
  const std::string_view text = as_text(prefix);
  if (text.empty()) return det;

  if (is_http_start(text)) {
    det.protocol = AppProtocol::kHttp;
    const std::size_t end = text.find("\r\n\r\n");
    if (end == std::string_view::npos) {
      det.header_length = text.size();
      det.header_complete = false;
    } else {
      det.header_length = end + 4;
      det.header_complete = true;
    }
    return det;
  }
  if (starts_with(text, "220 ") || starts_with(text, "220-")) {
    return scan_lines(text, AppProtocol::kSmtp, &is_smtp_line);
  }
  if (starts_with(text, "+OK")) {
    return scan_lines(text, AppProtocol::kPop3, &is_pop3_line);
  }
  if (starts_with(text, "* OK")) {
    return scan_lines(text, AppProtocol::kImap, &is_imap_line);
  }
  return det;
}

std::span<const std::uint8_t> strip_header(
    std::span<const std::uint8_t> prefix) noexcept {
  const HeaderDetection det = detect_header(prefix);
  return prefix.subspan(det.header_length);
}

}  // namespace iustitia::appproto
