# Empty dependencies file for iustitia_entropy.
# This may be replaced when dependencies are built.
