// Tests for the CART decision tree: impurity math, fit quality, pruning,
// and feature reporting.
#include "ml/cart.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace iustitia::ml {
namespace {

// Axis-separable two-class blobs.
Dataset separable_blobs(std::size_t per_class, util::Rng& rng) {
  Dataset data(2);
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)}, 0);
    data.add({rng.normal(5.0, 0.5), rng.normal(5.0, 0.5)}, 1);
  }
  return data;
}

// XOR pattern: requires depth >= 2.
Dataset xor_data(std::size_t per_quadrant, util::Rng& rng) {
  Dataset data(2);
  for (std::size_t i = 0; i < per_quadrant; ++i) {
    for (const int qx : {0, 1}) {
      for (const int qy : {0, 1}) {
        data.add({qx + rng.uniform(0.05, 0.95), qy + rng.uniform(0.05, 0.95)},
                 qx ^ qy);
      }
    }
  }
  return data;
}

TEST(GiniImpurity, KnownValues) {
  const std::size_t pure[] = {10, 0};
  EXPECT_DOUBLE_EQ(gini_impurity(pure), 0.0);
  const std::size_t even[] = {5, 5};
  EXPECT_DOUBLE_EQ(gini_impurity(even), 0.5);
  const std::size_t three[] = {1, 1, 1};
  EXPECT_NEAR(gini_impurity(three), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(gini_impurity({}), 0.0);
}

TEST(DecisionTree, RejectsEmptyTraining) {
  DecisionTree tree;
  EXPECT_THROW(tree.train(Dataset(2)), std::invalid_argument);
}

TEST(DecisionTree, PredictBeforeTrainThrows) {
  const DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(DecisionTree, PerfectlySeparableDataIsLearnedExactly) {
  util::Rng rng(1);
  const Dataset data = separable_blobs(50, rng);
  DecisionTree tree;
  tree.train(data);
  EXPECT_DOUBLE_EQ(tree.evaluate(data).accuracy(), 1.0);
  // A single split suffices.
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, LearnsXor) {
  util::Rng rng(2);
  const Dataset data = xor_data(40, rng);
  DecisionTree tree;
  tree.train(data);
  EXPECT_GE(tree.evaluate(data).accuracy(), 0.98);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, MaxDepthOneIsAStump) {
  util::Rng rng(3);
  const Dataset data = separable_blobs(30, rng);
  DecisionTree tree;
  tree.train(data, CartParams{.max_depth = 0});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  util::Rng rng(4);
  const Dataset data = separable_blobs(40, rng);
  DecisionTree tree;
  tree.train(data, CartParams{.min_samples_leaf = 10});
  for (const auto& node : tree.nodes()) {
    EXPECT_GE(node.samples, 10u);
  }
}

TEST(DecisionTree, NodeInvariants) {
  util::Rng rng(5);
  const Dataset data = xor_data(30, rng);
  DecisionTree tree;
  tree.train(data);
  const auto& nodes = tree.nodes();
  ASSERT_FALSE(nodes.empty());
  EXPECT_EQ(nodes[0].samples, data.size());
  for (const auto& node : nodes) {
    if (node.feature >= 0) {
      const auto& l = nodes[static_cast<std::size_t>(node.left)];
      const auto& r = nodes[static_cast<std::size_t>(node.right)];
      EXPECT_EQ(l.samples + r.samples, node.samples);
    }
    EXPECT_LE(node.errors, node.samples);
    EXPECT_GE(node.impurity, 0.0);
    EXPECT_LE(node.impurity, 1.0);
  }
}

TEST(DecisionTree, PruneWeakestLinkShrinksLeaves) {
  util::Rng rng(6);
  const Dataset data = xor_data(30, rng);
  DecisionTree tree;
  tree.train(data);
  const std::size_t before = tree.leaf_count();
  ASSERT_GT(before, 1u);
  EXPECT_TRUE(tree.prune_weakest_link());
  EXPECT_LT(tree.leaf_count(), before);
}

TEST(DecisionTree, PruningToSingleLeafThenStops) {
  util::Rng rng(7);
  const Dataset data = separable_blobs(20, rng);
  DecisionTree tree;
  tree.train(data);
  int steps = 0;
  while (tree.prune_weakest_link()) {
    ++steps;
    ASSERT_LT(steps, 1000);
  }
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_FALSE(tree.prune_weakest_link());
}

TEST(DecisionTree, PruneToAccuracyBoundsTheDrop) {
  util::Rng rng(8);
  Dataset data = xor_data(60, rng);
  // Add label noise so the full tree overfits and pruning has room.
  Dataset noisy(2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int label = rng.chance(0.1) ? 1 - data[i].label : data[i].label;
    noisy.add(data[i].features, label);
  }
  DecisionTree tree;
  tree.train(noisy);
  const double before = tree.evaluate(data).accuracy();
  tree.prune_to_accuracy(data, 0.02);
  const double after = tree.evaluate(data).accuracy();
  EXPECT_GE(after, before - 0.02 - 1e-9);
}

TEST(DecisionTree, FeaturesUsedAndImportance) {
  // Only feature 1 is informative.
  util::Rng rng(9);
  Dataset data(2);
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    data.add({rng.uniform(), label == 0 ? rng.uniform(0.0, 0.4)
                                        : rng.uniform(0.6, 1.0)},
             label);
  }
  DecisionTree tree;
  tree.train(data);
  const auto used = tree.features_used();
  ASSERT_FALSE(used.empty());
  const auto importance = tree.feature_importance();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[1], importance[0]);
  double total = importance[0] + importance[1];
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ImpurityCriteria, EntropyValues) {
  const std::size_t pure[] = {10, 0};
  EXPECT_DOUBLE_EQ(entropy_impurity(pure), 0.0);
  const std::size_t even[] = {5, 5};
  EXPECT_DOUBLE_EQ(entropy_impurity(even), 1.0);
  const std::size_t three[] = {1, 1, 1};
  EXPECT_NEAR(entropy_impurity(three), std::log2(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(impurity(even, SplitCriterion::kGini), 0.5);
  EXPECT_DOUBLE_EQ(impurity(even, SplitCriterion::kEntropy), 1.0);
}

TEST(DecisionTree, EntropyCriterionLearnsXorToo) {
  util::Rng rng(11);
  const Dataset data = xor_data(40, rng);
  DecisionTree tree;
  tree.train(data, CartParams{.criterion = SplitCriterion::kEntropy});
  EXPECT_GE(tree.evaluate(data).accuracy(), 0.98);
}

TEST(DecisionTree, MultiClassMajorityLabels) {
  util::Rng rng(10);
  Dataset data(3);
  for (int i = 0; i < 60; ++i) {
    data.add({rng.normal(0.0, 0.3)}, 0);
    data.add({rng.normal(3.0, 0.3)}, 1);
    data.add({rng.normal(6.0, 0.3)}, 2);
  }
  DecisionTree tree;
  tree.train(data);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{6.0}), 2);
  EXPECT_EQ(tree.num_classes(), 3);
}

}  // namespace
}  // namespace iustitia::ml
