file(REMOVE_RECURSE
  "CMakeFiles/iustitia_appproto.dir/header_gen.cc.o"
  "CMakeFiles/iustitia_appproto.dir/header_gen.cc.o.d"
  "CMakeFiles/iustitia_appproto.dir/header_stripper.cc.o"
  "CMakeFiles/iustitia_appproto.dir/header_stripper.cc.o.d"
  "libiustitia_appproto.a"
  "libiustitia_appproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_appproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
