#include "ml/model_selection.h"

#include <span>
#include <stdexcept>

#include "ml/cross_validation.h"

namespace iustitia::ml {

GridSearchResult svm_grid_search(const Dataset& data,
                                 std::span<const double> gammas,
                                 std::span<const double> cs, std::size_t folds,
                                 const SvmParams& base, util::Rng& rng) {
  if (gammas.empty() || cs.empty()) {
    throw std::invalid_argument("svm_grid_search: empty grid");
  }
  GridSearchResult result;
  result.best.accuracy = -1.0;
  for (const double gamma : gammas) {
    for (const double c : cs) {
      SvmParams params = base;
      params.gamma = gamma;
      params.c = c;
      util::Rng cv_rng = rng.fork();
      const auto folds_result =
          cross_validate(data, folds, make_svm_factory(params), cv_rng);
      GridPoint point{gamma, c, mean_accuracy(folds_result)};
      result.evaluated.push_back(point);
      if (point.accuracy > result.best.accuracy) result.best = point;
    }
  }
  return result;
}

}  // namespace iustitia::ml
