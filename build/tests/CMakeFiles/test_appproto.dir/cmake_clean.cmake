file(REMOVE_RECURSE
  "CMakeFiles/test_appproto.dir/test_appproto.cc.o"
  "CMakeFiles/test_appproto.dir/test_appproto.cc.o.d"
  "test_appproto"
  "test_appproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
