#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace iustitia::util {

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, 0.5);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p25 = quantile_sorted(sorted, 0.25);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> values)
    : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::evaluate(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const noexcept {
  return quantile_sorted(sorted_, q);
}

std::vector<std::pair<double, double>> EmpiricalCdf::points(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || max_points == 0) return out;
  const std::size_t step =
      sorted_.size() <= max_points ? 1 : sorted_.size() / max_points;
  for (std::size_t i = 0; i < sorted_.size(); i += step) {
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                     static_cast<double>(sorted_.size()));
  }
  if (out.back().first != sorted_.back()) {
    out.emplace_back(sorted_.back(), 1.0);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double value) noexcept { add_n(value, 1); }

void Histogram::add_n(double value, std::size_t n) noexcept {
  double idx = (value - lo_) / width_;
  if (idx < 0.0) idx = 0.0;
  auto bin = static_cast<std::size_t>(idx);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  counts_[bin] += n;
  total_ += n;
}

double Histogram::bin_center(std::size_t bin) const noexcept {
  return lo_ + width_ * (static_cast<double>(bin) + 0.5);
}

double Histogram::fraction(std::size_t bin) const noexcept {
  return total_ == 0
             ? 0.0
             : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace iustitia::util
