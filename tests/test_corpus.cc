// Corpus-level tests: class balance, determinism, and the paper's two
// hypotheses as measurable properties of the synthetic pool.
#include "datagen/corpus.h"

#include <span>

#include <gtest/gtest.h>

#include "entropy/divergence.h"
#include "entropy/entropy_vector.h"
#include "util/stats.h"

namespace iustitia::datagen {
namespace {

double h1_of(std::span<const std::uint8_t> data) {
  const int widths[] = {1};
  return entropy::entropy_vector(data, widths)[0];
}

CorpusOptions small_options() {
  CorpusOptions options;
  options.files_per_class = 30;
  options.min_size = 2048;
  options.max_size = 8192;
  options.seed = 99;
  return options;
}

TEST(ClassName, AllValues) {
  EXPECT_STREQ(class_name(FileClass::kText), "text");
  EXPECT_STREQ(class_name(FileClass::kBinary), "binary");
  EXPECT_STREQ(class_name(FileClass::kEncrypted), "encrypted");
}

TEST(BuildCorpus, BalancedAndSized) {
  const auto corpus = build_corpus(small_options());
  ASSERT_EQ(corpus.size(), 90u);
  std::size_t counts[3] = {};
  for (const auto& file : corpus) {
    ++counts[static_cast<int>(file.label)];
    EXPECT_GE(file.bytes.size(), 2048u);
    EXPECT_LE(file.bytes.size(), 8192u);
    EXPECT_FALSE(file.kind.empty());
  }
  EXPECT_EQ(counts[0], 30u);
  EXPECT_EQ(counts[1], 30u);
  EXPECT_EQ(counts[2], 30u);
}

TEST(BuildCorpus, DeterministicForSeed) {
  const auto a = build_corpus(small_options());
  const auto b = build_corpus(small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].bytes, b[i].bytes);
    ASSERT_EQ(a[i].label, b[i].label);
  }
  CorpusOptions other = small_options();
  other.seed = 100;
  const auto c = build_corpus(other);
  EXPECT_NE(a[0].bytes, c[0].bytes);
}

TEST(BuildCorpus, Hypothesis1EntropyOrdering) {
  // Mean h_1: text < binary < encrypted — the observation behind the whole
  // system (paper Section 3.2, Fig. 2a).
  const auto corpus = build_corpus(small_options());
  double sums[3] = {};
  std::size_t counts[3] = {};
  for (const auto& file : corpus) {
    sums[static_cast<int>(file.label)] += h1_of(file.bytes);
    ++counts[static_cast<int>(file.label)];
  }
  const double text = sums[0] / static_cast<double>(counts[0]);
  const double binary = sums[1] / static_cast<double>(counts[1]);
  const double encrypted = sums[2] / static_cast<double>(counts[2]);
  EXPECT_LT(text, binary);
  EXPECT_LT(binary, encrypted);
  EXPECT_GT(encrypted, 0.95);  // ciphertext is nearly uniform
}

TEST(BuildCorpus, Hypothesis2PrefixRepresentsWhole) {
  // JSD between the first-20% byte distribution and the whole-file one
  // should be small on average (paper: >= 86% similarity for f_1).
  const auto corpus = build_corpus(small_options());
  util::RunningStats jsd_stats;
  for (const auto& file : corpus) {
    const auto prefix_len = file.bytes.size() / 5;
    const auto prefix = entropy::gram_distribution(
        std::span<const std::uint8_t>(file.bytes.data(), prefix_len), 1);
    const auto whole = entropy::gram_distribution(file.bytes, 1);
    jsd_stats.add(entropy::js_divergence(prefix, whole));
  }
  EXPECT_LT(jsd_stats.mean(), 0.14);
}

TEST(GenerateFile, EncryptedFilesHaveMaximalPairEntropy) {
  util::Rng rng(7);
  const FileSample file = generate_file(FileClass::kEncrypted, 8192, rng);
  const int widths[] = {2};
  EXPECT_GT(entropy::entropy_vector(file.bytes, widths)[0], 0.75);
}

TEST(GenerateFile, RequestedSizeHonored) {
  util::Rng rng(8);
  for (const FileClass label :
       {FileClass::kText, FileClass::kBinary, FileClass::kEncrypted}) {
    const FileSample file = generate_file(label, 4096, rng);
    EXPECT_EQ(file.bytes.size(), 4096u);
    EXPECT_EQ(file.label, label);
  }
}

}  // namespace
}  // namespace iustitia::datagen
