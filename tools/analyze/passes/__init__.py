"""Analyzer passes.  Each exposes run(ctx) -> list[Finding]."""

from passes import (atomics, contracts, deadcode, escape, layering,
                    lockorder, locks)

PASSES = {
    "layering": layering.run,
    "locks": locks.run,
    "lockorder": lockorder.run,
    "atomics": atomics.run,
    "escape": escape.run,
    "deadcode": deadcode.run,
    "contracts": contracts.run,
}
