#include "ctrl/http.h"

#include <cctype>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/check.h"
#include "util/logging.h"

namespace iustitia::ctrl {

namespace {

// Accept loop poll period: the latency bound on noticing stop().
constexpr int kAcceptPollMillis = 50;

// Per-connection I/O budget; a stalled client cannot wedge a pool
// thread past this.
constexpr std::chrono::seconds kConnectionDeadline(5);

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Writes the whole buffer, tolerating partial sends; false on error.
bool send_all(int fd, std::string_view data) noexcept {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

std::size_t HttpRequest::content_length() const noexcept {
  const std::string_view raw = header("Content-Length");
  if (raw.empty()) return 0;
  std::size_t value = 0;
  for (const char c : raw) {
    if (c < '0' || c > '9') return static_cast<std::size_t>(-1);
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (static_cast<std::size_t>(-1) - digit) / 10) {
      return static_cast<std::size_t>(-1);  // overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

const char* status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpResponse::serialize() const {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

HttpResponse text_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

bool parse_request_head(std::string_view head, HttpRequest& out,
                        std::string& error) {
  out = HttpRequest{};
  std::size_t pos = 0;
  const auto next_line = [&](std::string_view& line) {
    if (pos >= head.size()) return false;
    std::size_t end = head.find('\n', pos);
    if (end == std::string_view::npos) end = head.size();
    line = trim(head.substr(pos, end - pos));
    pos = end + 1;
    return true;
  };

  std::string_view request_line;
  if (!next_line(request_line) || request_line.empty()) {
    error = "empty request";
    return false;
  }
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    error = "malformed request line";
    return false;
  }
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trim(request_line.substr(sp2 + 1)));
  if (out.method.empty() || out.target.empty() ||
      out.version.rfind("HTTP/", 0) != 0) {
    error = "malformed request line";
    return false;
  }

  std::string_view line;
  while (next_line(line)) {
    if (line.empty()) break;  // end of head
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      error = "malformed header line";
      return false;
    }
    out.headers.emplace_back(std::string(trim(line.substr(0, colon))),
                             std::string(trim(line.substr(colon + 1))));
  }
  return true;
}

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  CHECK(handler_ != nullptr) << "HttpServer needs a handler";
  CHECK_GT(options_.handler_threads, std::size_t{0});
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  util::MutexLock lock(lifecycle_mu_);
  CHECK(!started_) << "HttpServer is single-shot; construct a new one";
  started_ = true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("ctrl: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("ctrl: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("ctrl: cannot bind " + options_.bind_address +
                             ":" + std::to_string(options_.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("ctrl: listen() failed");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_relaxed);
  }
  listen_fd_.store(fd, std::memory_order_relaxed);

  handlers_.reserve(options_.handler_threads);
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  util::MutexLock lock(lifecycle_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  const int fd = listen_fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
  // Connections accepted but never served: close them so clients see a
  // reset instead of a hang.
  util::MutexLock queue_lock(queue_mu_);
  while (!pending_.empty()) {
    ::close(pending_.front());
    pending_.pop_front();
  }
}

void HttpServer::accept_loop() {
  const int listen_fd = listen_fd_.load(std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    {
      util::MutexLock lock(queue_mu_);
      pending_.push_back(conn);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      util::MutexLock lock(queue_mu_);
      while (!stop_.load(std::memory_order_relaxed) && pending_.empty()) {
        queue_cv_.wait(queue_mu_);
      }
      if (pending_.empty()) return;  // stop requested and queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Bounded read with a poll-based deadline: a client that stalls
  // mid-request gets cut off, never a pool thread.  Two clocks run: a
  // total connection deadline (bounds even a byte-at-a-time trickler)
  // and a shorter idle timeout that cuts a silent client off with a 408
  // (the slowloris guard).
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + kConnectionDeadline;
  const std::chrono::milliseconds idle_timeout(options_.idle_timeout_millis);
  auto last_progress = start;
  std::string data;
  std::size_t head_end = std::string::npos;
  HttpRequest request;
  std::string parse_error;
  bool head_parsed = false;
  std::size_t body_target = 0;
  HttpResponse response;
  bool respond_now = false;
  char chunk[4096];

  while (!respond_now) {
    const auto now = std::chrono::steady_clock::now();
    if (stop_.load(std::memory_order_relaxed) || now >= deadline) {
      ::close(fd);
      return;  // shutting down / timed out: drop without a response
    }
    if (idle_timeout.count() > 0 && now - last_progress >= idle_timeout) {
      response = text_response(408, "request timeout: no bytes received\n");
      break;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, kAcceptPollMillis) <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      return;  // peer went away mid-request
    }
    last_progress = std::chrono::steady_clock::now();
    data.append(chunk, static_cast<std::size_t>(n));
    if (data.size() > options_.max_request_bytes) {
      response = text_response(413, "request too large\n");
      break;
    }

    if (!head_parsed) {
      head_end = data.find("\r\n\r\n");
      std::size_t body_start = head_end + 4;
      if (head_end == std::string::npos) {
        head_end = data.find("\n\n");
        body_start = head_end + 2;
      }
      if (head_end == std::string::npos) continue;  // need more head
      if (!parse_request_head(std::string_view(data).substr(0, head_end),
                              request, parse_error)) {
        response = text_response(400, parse_error + "\n");
        break;
      }
      head_parsed = true;
      request.body = data.substr(body_start);
      body_target = request.content_length();
      if (body_target == static_cast<std::size_t>(-1) ||
          body_target > options_.max_request_bytes) {
        response = text_response(400, "bad Content-Length\n");
        break;
      }
    } else {
      request.body.append(chunk, static_cast<std::size_t>(n));
    }
    if (head_parsed && request.body.size() >= body_target) {
      request.body.resize(body_target);
      respond_now = true;
    }
  }

  if (respond_now) {
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = text_response(500, std::string("handler error: ") +
                                        e.what() + "\n");
    }
  }
  if (!send_all(fd, response.serialize())) {
    IUSTITIA_LOG_WARN << "ctrl: short write on response (" << request.method
                      << " " << request.target << ")";
  }
  ::close(fd);
}

}  // namespace iustitia::ctrl
