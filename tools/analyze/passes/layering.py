"""Layering pass: module dependency matrix + include-cycle detection.

The architecture stacks the src/ modules in layers (see DESIGN.md
"Layering"):

      L0  util
      L1  datagen   entropy   ml
      L2  net   dpi
      L3  appproto
      L4  core
      L5  runtime

A module may include headers only from the modules its matrix row names
(always itself and anything in a strictly lower layer that the row lists).
The matrix is deliberately explicit — adding a dependency edge is a code
review decision, made by editing ALLOWED_DEPS here, not an accident of
whoever first writes the include line.

The pass also rejects include cycles among project headers, which break
incremental builds and usually signal a layering problem the matrix has
not caught yet (e.g. a cycle inside one module).
"""

from __future__ import annotations

from findings import Finding

# module -> modules it may include from (itself is always allowed).
ALLOWED_DEPS: dict[str, set[str]] = {
    "util": set(),
    "datagen": {"util"},
    "entropy": {"util"},
    "ml": {"util"},
    "net": {"util", "datagen"},
    "dpi": {"util", "datagen"},
    "appproto": {"util", "datagen", "net"},
    "core": {"util", "datagen", "entropy", "ml", "net", "appproto"},
    # The serving runtime orchestrates engines; it must not reach below
    # core's abstractions for anything but transport (net) and util.
    "runtime": {"util", "net", "core"},
    # The control plane sits on top of everything it administers: the
    # runtime (metrics, lifecycle), core (model registry/bundles), and
    # ml (bundle framing).  Nothing may depend back on ctrl.
    "ctrl": {"util", "runtime", "core", "ml"},
}


def _project_target(include_target: str) -> str | None:
    """Module of an include written repo-style ("net/packet.h")."""
    parts = include_target.split("/")
    return parts[0] if len(parts) >= 2 else None


def run(ctx) -> list[Finding]:
    findings: list[Finding] = []
    allowed = ctx.allowed_deps if ctx.allowed_deps is not None \
        else ALLOWED_DEPS

    # --- matrix check over every layered file -----------------------------
    for path, model in sorted(ctx.models.items()):
        module = ctx.universe.module_of(path)
        if module is None:
            continue  # tests/bench/examples/tools are not layered
        if module not in allowed:
            findings.append(Finding(
                "layer-unknown-module", path, 1,
                f"module '{module}' is not in the allowed-dependency "
                f"matrix; add it to DESIGN.md and tools/analyze",
                anchor=module))
            continue
        row = allowed[module] | {module}
        for inc in model.includes:
            if not inc.is_project:
                continue
            target = _project_target(inc.target)
            if target is None or target not in allowed:
                continue  # not a layered module header
            if target not in row:
                findings.append(Finding(
                    "layer-violation", path, inc.line,
                    f"module '{module}' may not depend on '{target}' "
                    f"(include of \"{inc.target}\"); allowed: "
                    f"{{{', '.join(sorted(row))}}}",
                    anchor=f"{module}->{inc.target}"))

    # --- include cycles among project headers -----------------------------
    graph: dict[str, list[tuple[str, int]]] = {}
    for path, model in ctx.models.items():
        edges = []
        for inc in model.includes:
            if inc.is_project and ctx.resolve_include(inc.target):
                edges.append((ctx.resolve_include(inc.target), inc.line))
        graph[path] = edges

    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    stack: list[str] = []
    reported: set[frozenset[str]] = set()

    def dfs(node: str) -> None:
        color[node] = GRAY
        stack.append(node)
        for dep, line in graph.get(node, ()):
            if color.get(dep, BLACK) == GRAY:
                cycle = stack[stack.index(dep):] + [dep]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    findings.append(Finding(
                        "layer-cycle", node, line,
                        "include cycle: " + " -> ".join(cycle),
                        anchor="->".join(sorted(set(cycle)))))
            elif color.get(dep) == WHITE:
                dfs(dep)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)

    return findings
