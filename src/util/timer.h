// Wall-clock stopwatch for the timing experiments (Fig. 5, Table 3).
#ifndef IUSTITIA_UTIL_TIMER_H_
#define IUSTITIA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace iustitia::util {

// Steady-clock stopwatch with microsecond resolution reporting.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  // Elapsed time since construction or the last reset().
  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_micros() const noexcept { return elapsed_seconds() * 1e6; }
  double elapsed_millis() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_TIMER_H_
