// Counting replacement operator new/delete for allocation-freedom tests.
//
// Include this header in EXACTLY ONE translation unit per binary: it
// defines the global replacement allocation functions (an ODR-unique
// set per program).  Every allocation bumps a process-wide counter that
// tests read through alloc_calls() before/after the code under test,
// and reports to util::rt::note_alloc() so allocations inside a
// util::rt::GuardRegion count as real-time violations (and FATAL under
// IUSTITIA_RT_DEBUG) — the dynamic twin of the tools/analyze `hotpath`
// pass.
#ifndef IUSTITIA_TESTS_ALLOC_HOOK_H_
#define IUSTITIA_TESTS_ALLOC_HOOK_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "util/rt_guard.h"

namespace iustitia::testhooks {
namespace {

std::atomic<std::size_t> g_alloc_calls{0};

// Total operator new/new[] calls so far (deletes are not counted).
std::size_t alloc_calls() noexcept {
  return g_alloc_calls.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  util::rt::note_alloc("operator new");
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  util::rt::note_alloc("operator delete");
  std::free(p);
}

}  // namespace
}  // namespace iustitia::testhooks

void* operator new(std::size_t size) {
  return iustitia::testhooks::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return iustitia::testhooks::counted_alloc(size);
}
void operator delete(void* p) noexcept { iustitia::testhooks::counted_free(p); }
void operator delete[](void* p) noexcept {
  iustitia::testhooks::counted_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  iustitia::testhooks::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  iustitia::testhooks::counted_free(p);
}

#endif  // IUSTITIA_TESTS_ALLOC_HOOK_H_
