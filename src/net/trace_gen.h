// Synthetic gateway trace generator.
//
// Substitute for the UMASS gigabit gateway trace used in Section 4.5 (not
// redistributable).  Every statistic the paper reports about that trace is
// a calibration target here:
//   - 41.16% of packets are TCP/UDP data packets,
//   - 146,714 packets/second aggregate rate,
//   - one flow per ~40 packets (299,564 flows / 11,976,410 packets),
//   - bimodal payload sizes: ~20% of data packets at 1480 bytes, >50%
//     under 140 bytes (Fig. 9(a)),
//   - a mix of FIN/RST-closed and never-closed TCP flows plus UDP flows
//     (Fig. 8: "up to 46% of the flows are removed" by FIN/RST purging).
//
// Flow payloads are real generated content of a known nature class
// (text/binary/encrypted), optionally behind a generated application-layer
// header, so classification accuracy can be measured against ground truth.
#ifndef IUSTITIA_NET_TRACE_GEN_H_
#define IUSTITIA_NET_TRACE_GEN_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "datagen/corpus.h"
#include "net/flow.h"
#include "net/packet.h"
#include "util/random.h"

namespace iustitia::net {

// Application-layer header prepended to a flow's content.  net does not
// know concrete protocols (appproto layers above net); the generator
// receives headers through a callback and records only the opaque id.
struct AppHeader {
  int protocol_id = 0;  // 0 = none; id values are assigned by the source
  std::vector<std::uint8_t> bytes;
};

// Draws a protocol and synthesizes its header bytes.  Must consume `rng`
// deterministically so traces stay reproducible; `content_length` is the
// flow's content size (for Content-Length style fields).
// appproto/trace_headers.h provides the standard implementation.
using AppHeaderSource =
    std::function<AppHeader(util::Rng& rng, std::size_t content_length)>;

// Trace shape knobs; defaults are the paper's calibration targets with a
// scaled-down packet budget (override target_packets for paper scale).
struct TraceOptions {
  std::size_t target_packets = 100000;
  // Wall-clock length of the flow-arrival window.  The aggregate packet
  // rate is target_packets / duration_seconds; at paper scale
  // (11,976,410 packets over ~81.6 s) this reproduces the paper's
  // 146,714 pkt/s.  Scaled-down benches keep per-flow timing realistic by
  // keeping a trace duration of seconds, not microseconds.
  double duration_seconds = 10.0;
  double data_packet_fraction = 0.4116;
  double flows_per_packet = 299564.0 / 11976410.0;
  double tcp_fraction = 0.85;
  double fin_close_fraction = 0.38;    // TCP flows closed with FIN
  double rst_close_fraction = 0.08;    // TCP flows closed with RST
  // Nature mix of data-carrying flows (text, binary, encrypted).
  std::array<double, 3> class_mix{0.45, 0.35, 0.20};
  // Fraction of flows that open with a well-known application header.
  // Any value > 0 requires a header_source.
  double app_header_fraction = 0.25;
  // Supplies the header for flows selected by app_header_fraction
  // (appproto::standard_header_source() is the calibrated default mix).
  AppHeaderSource header_source;
  // Real content bytes generated per flow; packets beyond this carry
  // filler of the same class statistics.
  std::size_t content_limit = 4096;
  std::uint64_t seed = 0xBEEF;
};

// Ground truth for one generated flow.
struct FlowTruth {
  datagen::FileClass nature = datagen::FileClass::kText;
  // Id reported by the trace's AppHeaderSource; 0 means no header.  With
  // the standard source this casts back to appproto::AppProtocol.
  int app_protocol_id = 0;
  std::size_t app_header_length = 0;
  std::size_t data_packets = 0;
  bool closed_by_fin = false;
  bool closed_by_rst = false;
};

// A fully generated trace: time-ordered packets plus per-flow ground truth.
struct Trace {
  std::vector<Packet> packets;
  std::unordered_map<FlowKey, FlowTruth, FlowKeyHash> truth;
  double duration_seconds = 0.0;
};

// Generates a trace per `options`.  Deterministic in options.seed.
Trace generate_trace(const TraceOptions& options);

// Draws one data-packet payload size from the calibrated bimodal
// distribution (exposed for tests and Fig. 9).
std::size_t sample_payload_size(util::Rng& rng) noexcept;

}  // namespace iustitia::net

#endif  // IUSTITIA_NET_TRACE_GEN_H_
