"""SARIF 2.1.0 emitter for analyzer findings.

Emits one run with the full rule table (so viewers can show rule help for
rules with zero results) and one result per finding.  Fingerprints go in
the standard `fingerprints` property under the key "iustitia/v1" — the
same string the baseline file stores, so SARIF consumers and the baseline
gate agree on finding identity.
"""

from __future__ import annotations

from findings import RULES, Finding, sort_key

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "iustitia-analyze"
TOOL_VERSION = "1.0.0"
SRCROOT = "SRCROOT"


def to_sarif(findings: list[Finding], repo_root_uri: str) -> dict:
    rule_ids = sorted(RULES)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = [
        {
            "id": rid,
            "name": "".join(w.capitalize() for w in rid.split("-")),
            "shortDescription": {"text": RULES[rid][0]},
            "defaultConfiguration": {"level": RULES[rid][1]},
        }
        for rid in rule_ids
    ]
    results = []
    for f in sorted(findings, key=sort_key):
        level = RULES.get(f.rule, ("", "warning"))[1]
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": level,
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": SRCROOT,
                    },
                    "region": {"startLine": max(1, f.line)},
                },
            }],
            "fingerprints": {"iustitia/v1": f.fingerprint},
        }
        if f.related:
            result["relatedLocations"] = [{
                "physicalLocation": {
                    "artifactLocation": {"uri": p, "uriBaseId": SRCROOT},
                    "region": {"startLine": max(1, line)},
                },
                "message": {"text": msg},
            } for p, line, msg in f.related]
        results.append(result)
    if not repo_root_uri.endswith("/"):
        repo_root_uri += "/"
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri":
                        "https://example.invalid/iustitia/tools/analyze",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                SRCROOT: {"uri": repo_root_uri},
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
