// Admin surface of the control plane (DESIGN.md §11): the endpoints an
// operator (or the ctrl-smoke CI stage) drives a live runtime with.
//
//   GET  /healthz        liveness probe: 200 "ok" while the process runs
//   GET  /readyz         readiness probe: 200 "ok", 200 "degraded(<shed
//                        stage>)" while the overload ladder is engaged,
//                        503 "unhealthy(watchdog)" while a runtime
//                        thread is stalled, 503 "draining" after quit
//   GET  /metrics        Prometheus text exposition of the snapshot
//   GET  /stats.json     the runtime's JSON metrics document
//   GET  /failpoints     registered failpoints + specs/counters (JSON)
//   POST /failpoints     arm/disarm failpoints from a spec string (see
//                        util/failpoint.h grammar; "off" disarms all)
//   POST /model          versioned model bundle upload -> RCU hot-swap
//   POST /quitquitquit   request graceful drain (wait_for_quit returns)
//
// AdminServer owns the HttpServer and translates requests into calls on
// the serving Runtime and its ModelRegistry.  A model upload is fully
// validated (bundle magic, format version, CRC) and parsed on the
// handler thread *before* publish() — a corrupt artifact is refused
// with a 400 and never reaches a shard worker.  /quitquitquit only
// flips the quit latch: actually draining the runtime is the serve
// loop's job after wait_for_quit() returns, so the HTTP response is
// written before packet flow stops.
#ifndef IUSTITIA_CTRL_ADMIN_H_
#define IUSTITIA_CTRL_ADMIN_H_

#include <condition_variable>
#include <cstdint>
#include <memory>

#include "core/model_registry.h"
#include "ctrl/http.h"
#include "runtime/runtime.h"
#include "util/thread_annotations.h"

namespace iustitia::ctrl {

class AdminServer {
 public:
  // `runtime` must outlive the server.  `registry` may be null: model
  // uploads then answer 503 (runtime without hot-swap), every read-only
  // endpoint still works.
  AdminServer(runtime::Runtime* runtime,
              std::shared_ptr<core::ModelRegistry> registry,
              HttpServer::Options options);
  ~AdminServer();  // stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  void start();
  void stop();

  // Actually bound port; valid after start().
  std::uint16_t port() const noexcept { return server_.port(); }

  // The quit latch: set by POST /quitquitquit or notify_quit(), sticky.
  bool quit_requested() const;
  // Blocks until the latch is set (stop() also releases waiters).
  void wait_for_quit();
  // External trigger for the same latch (e.g. the signal drain), so the
  // serve loop has a single thing to wait on.
  void notify_quit();

 private:
  HttpResponse handle(const HttpRequest& request);
  HttpResponse handle_model_post(const HttpRequest& request);
  HttpResponse handle_readyz() const;
  HttpResponse handle_failpoints(const HttpRequest& request);

  runtime::Runtime* const runtime_;
  const std::shared_ptr<core::ModelRegistry> registry_;

  mutable util::Mutex quit_mu_{"AdminServer::quit_mu_"};
  std::condition_variable_any quit_cv_;
  bool quit_ IUSTITIA_GUARDED_BY(quit_mu_) = false;

  HttpServer server_;
};

}  // namespace iustitia::ctrl

#endif  // IUSTITIA_CTRL_ADMIN_H_
