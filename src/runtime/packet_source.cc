#include "runtime/packet_source.h"

#include <algorithm>
#include <istream>
#include <thread>
#include <utility>

namespace iustitia::runtime {

void Pacer::tick() {
  if (target_ <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  if (!started_) {
    started_ = true;
    start_ = now;
  }
  ++ticks_;
  const auto deadline =
      start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(ticks_) / target_));
  if (deadline > now) std::this_thread::sleep_until(deadline);
}

PcapReplaySource::PcapReplaySource(std::istream& is, double target_pps)
    : reader_(is), pacer_(target_pps) {}

std::optional<net::Packet> PcapReplaySource::next() {
  std::optional<net::Packet> packet = reader_.next();
  if (!packet.has_value()) return std::nullopt;
  pacer_.tick();
  ++delivered_;
  return packet;
}

std::size_t PcapReplaySource::next_burst(std::span<net::Packet> out) {
  std::size_t n = 0;
  for (net::Packet& slot : out) {
    std::optional<net::Packet> packet = reader_.next();
    if (!packet.has_value()) break;
    pacer_.tick();
    slot = *std::move(packet);
    ++n;
  }
  delivered_ += n;
  return n;
}

TraceSource::TraceSource(net::Trace trace, double target_pps)
    : trace_(std::move(trace)), pacer_(target_pps) {}

TraceSource::TraceSource(const net::TraceOptions& options, double target_pps)
    : TraceSource(net::generate_trace(options), target_pps) {}

std::optional<net::Packet> TraceSource::next() {
  if (next_index_ >= trace_.packets.size()) return std::nullopt;
  pacer_.tick();
  return std::move(trace_.packets[next_index_++]);
}

std::size_t TraceSource::next_burst(std::span<net::Packet> out) {
  // Bulk move straight out of the owned trace: no per-packet optional,
  // one bounds computation for the whole burst.
  const std::size_t n =
      std::min(out.size(), trace_.packets.size() - next_index_);
  for (std::size_t i = 0; i < n; ++i) {
    pacer_.tick();
    out[i] = std::move(trace_.packets[next_index_ + i]);
  }
  next_index_ += n;
  return n;
}

}  // namespace iustitia::runtime
