// Liveness watchdog for the runtime's service threads (DESIGN.md §12).
//
// Every supervised thread bumps a dedicated heartbeat counter once per
// loop iteration — including idle iterations, so a worker parked on an
// empty ring is "alive", while one wedged inside packet processing (or
// a stalled failpoint) is not.  A sampling thread checks each
// heartbeat every deadline/4: a counter that has not moved for a full
// deadline marks its thread stalled, counts a stall detection in
// MetricsRegistry, fails readiness (Runtime::health reports
// unhealthy), and — under the watchdog_fatal debug option — FATALs
// with the stuck thread's index so the stack is in the core dump.  A
// heartbeat that moves again clears the stall: detection is a latch on
// the health signal, not a crash loop.
//
// heartbeat() is one relaxed add on a cache-line-private counter, legal
// inside GuardRegions and analyzer-audited hot loops.
//
// The lifecycle methods carry watchdog-specific names (start_watching /
// stop_watching) so the static lock-order pass never conflates them
// with the start/stop of the servers that call them.
#ifndef IUSTITIA_RUNTIME_WATCHDOG_H_
#define IUSTITIA_RUNTIME_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/spsc_ring.h"
#include "util/thread_annotations.h"

namespace iustitia::runtime {

struct WatchdogOptions {
  // No-progress deadline per supervised thread; 0 disables the watchdog
  // entirely (start_watching() becomes a no-op).
  std::uint64_t deadline_ms = 1000;
  // Debug option: FATAL on the first stall detection instead of just
  // failing the health check.
  bool fatal = false;
};

class Watchdog {
 public:
  // `metrics` may be null; detections are then unreported.
  Watchdog(std::size_t threads, const WatchdogOptions& options,
           MetricsRegistry* metrics);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start_watching();
  void stop_watching();

  // Supervised-thread side: one relaxed add per loop iteration.
  // analyze: hotpath
  void heartbeat(std::size_t index) noexcept {
    beats_[index].count.fetch_add(1, std::memory_order_relaxed);
  }

  // Supervised thread is exiting cleanly; the watcher stops expecting
  // its heartbeats (and clears any stall latched against it).
  void retire(std::size_t index) noexcept {
    beats_[index].retired.store(true, std::memory_order_relaxed);
  }

  // Any thread: number of threads currently considered stalled.
  std::size_t stalled_count() const noexcept {
    return stalled_now_.load(std::memory_order_relaxed);
  }

  bool any_stalled() const noexcept { return stalled_count() > 0; }

  // Total stall detections since start (matches the metrics counter).
  std::uint64_t stall_events() const noexcept {
    return stall_events_.load(std::memory_order_relaxed);
  }

  std::size_t thread_count() const noexcept { return threads_; }

 private:
  void watch_loop();

  struct alignas(kCacheLineBytes) Beat {
    std::atomic<std::uint64_t> count{0};  // analyze: atomic(relaxed-counter)
    std::atomic<bool> retired{false};     // analyze: atomic(relaxed-flag)
  };

  const std::size_t threads_;
  const WatchdogOptions options_;
  MetricsRegistry* const metrics_;
  std::unique_ptr<Beat[]> beats_;
  // Watcher-thread bookkeeping: last observed count and accumulated
  // no-progress time per thread.
  std::vector<std::uint64_t> last_seen_;     // analyze: escape(watcher thread only)
  std::vector<std::uint64_t> idle_millis_;   // analyze: escape(watcher thread only)
  std::vector<bool> stalled_;                // analyze: escape(watcher thread only)
  std::atomic<std::size_t> stalled_now_{0};     // analyze: atomic(relaxed-counter)
  std::atomic<std::uint64_t> stall_events_{0};  // analyze: atomic(relaxed-counter)

  util::Mutex mu_{"Watchdog::mu_"};
  std::condition_variable_any cv_;
  bool stop_requested_ IUSTITIA_GUARDED_BY(mu_) = false;
  std::thread thread_;  // analyze: escape(started before, joined after, watch_loop)
};

}  // namespace iustitia::runtime

#endif  // IUSTITIA_RUNTIME_WATCHDOG_H_
