// Tests for the SMO-trained SVM and the DAGSVM multi-class composition.
#include "ml/svm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace iustitia::ml {
namespace {

TEST(KernelValue, LinearIsDotProduct) {
  const std::vector<double> a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_DOUBLE_EQ(kernel_value(KernelType::kLinear, 0.0, a, b), 1.0);
}

TEST(KernelValue, RbfProperties) {
  const std::vector<double> a{1.0, 2.0}, b{1.5, 2.0};
  // K(x,x) = 1; K decreases with distance; symmetric.
  EXPECT_DOUBLE_EQ(kernel_value(KernelType::kRbf, 2.0, a, a), 1.0);
  const double k_ab = kernel_value(KernelType::kRbf, 2.0, a, b);
  EXPECT_DOUBLE_EQ(k_ab, std::exp(-2.0 * 0.25));
  EXPECT_DOUBLE_EQ(k_ab, kernel_value(KernelType::kRbf, 2.0, b, a));
}

TEST(BinarySvm, InputValidation) {
  BinarySvm svm;
  SvmParams params;
  EXPECT_THROW(svm.train({}, {}, params), std::invalid_argument);
  EXPECT_THROW(svm.train({{1.0}}, {1, -1}, params), std::invalid_argument);
  EXPECT_THROW(svm.train({{1.0}}, {0}, params), std::invalid_argument);
}

TEST(BinarySvm, LinearlySeparableWithLinearKernel) {
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({rng.normal(-2.0, 0.4), rng.normal(0.0, 0.4)});
    y.push_back(-1);
    x.push_back({rng.normal(2.0, 0.4), rng.normal(0.0, 0.4)});
    y.push_back(+1);
  }
  BinarySvm svm;
  svm.train(x, y, SvmParams{.kernel = KernelType::kLinear, .c = 10.0});
  ASSERT_TRUE(svm.trained());
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += (svm.predict(x[i]) == y[i]);
  }
  EXPECT_EQ(correct, static_cast<int>(x.size()));
  // Only boundary points should be support vectors.
  EXPECT_LT(svm.support_vector_count(), x.size());
}

TEST(BinarySvm, XorRequiresRbf) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 50; ++i) {
    for (const int qx : {0, 1}) {
      for (const int qy : {0, 1}) {
        x.push_back(
            {qx + rng.uniform(0.05, 0.95), qy + rng.uniform(0.05, 0.95)});
        y.push_back((qx ^ qy) ? +1 : -1);
      }
    }
  }
  BinarySvm svm;
  svm.train(x, y, SvmParams{.kernel = KernelType::kRbf, .gamma = 4.0,
                            .c = 100.0});
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += (svm.predict(x[i]) == y[i]);
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(x.size()),
            0.97);
}

TEST(KernelValue, PolynomialKernel) {
  SvmParams params;
  params.kernel = KernelType::kPolynomial;
  params.gamma = 2.0;
  params.coef0 = 1.0;
  params.degree = 3;
  const std::vector<double> a{1.0, 0.5}, b{2.0, 2.0};
  // (2*(1*2 + 0.5*2) + 1)^3 = (2*3 + 1)^3 = 343.
  EXPECT_DOUBLE_EQ(kernel_value(params, a, b), 343.0);
}

TEST(BinarySvm, PolynomialKernelLearnsCircularBoundary) {
  // Points inside a circle vs outside: solvable by a degree-2 polynomial.
  util::Rng rng(21);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const double px = rng.uniform(-2.0, 2.0);
    const double py = rng.uniform(-2.0, 2.0);
    const double r2 = px * px + py * py;
    if (r2 > 0.8 && r2 < 1.2) continue;  // margin gap
    x.push_back({px, py});
    y.push_back(r2 <= 1.0 ? +1 : -1);
  }
  SvmParams params;
  params.kernel = KernelType::kPolynomial;
  params.gamma = 1.0;
  params.coef0 = 1.0;
  params.degree = 2;
  params.c = 100.0;
  BinarySvm svm;
  svm.train(x, y, params);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += (svm.predict(x[i]) == y[i]);
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(x.size()),
            0.97);
}

TEST(BinarySvm, DecisionSignMatchesPredict) {
  util::Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back({rng.normal(-1.0, 0.2)});
    y.push_back(-1);
    x.push_back({rng.normal(1.0, 0.2)});
    y.push_back(+1);
  }
  BinarySvm svm;
  svm.train(x, y, SvmParams{.gamma = 1.0, .c = 10.0});
  for (const auto& xi : x) {
    const double d = svm.decision(xi);
    EXPECT_EQ(svm.predict(xi), d >= 0.0 ? 1 : -1);
  }
}

TEST(BinarySvm, MarginConstraintApproximatelySatisfied) {
  // For separable data with large C, support vectors should sit near the
  // margin: y_i * f(x_i) >= 1 - tol for all training points.
  util::Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 40; ++i) {
    x.push_back({rng.normal(-3.0, 0.3), rng.normal(0.0, 0.3)});
    y.push_back(-1);
    x.push_back({rng.normal(3.0, 0.3), rng.normal(0.0, 0.3)});
    y.push_back(+1);
  }
  BinarySvm svm;
  svm.train(x, y, SvmParams{.kernel = KernelType::kLinear, .c = 1000.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(static_cast<double>(y[i]) * svm.decision(x[i]), 1.0 - 0.05);
  }
}

TEST(BinarySvm, KktConditionsHoldAtSolution) {
  // Property check on the SMO solution: for every training point,
  //   alpha_i == 0       =>  y_i f(x_i) >= 1 - tol
  //   0 < alpha_i < C    =>  y_i f(x_i) ~= 1
  //   alpha_i == C       =>  y_i f(x_i) <= 1 + tol
  // We can observe alpha only through the stored support vectors: points
  // absent from the SV set have alpha == 0, so check the first condition
  // for them and the margin band for interior SVs via |coef| < C.
  util::Rng rng(20);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({rng.normal(-1.5, 0.5), rng.normal(0.0, 0.5)});
    y.push_back(-1);
    x.push_back({rng.normal(1.5, 0.5), rng.normal(0.0, 0.5)});
    y.push_back(+1);
  }
  SvmParams params;
  params.kernel = KernelType::kRbf;
  params.gamma = 0.5;
  params.c = 10.0;
  BinarySvm svm;
  svm.train(x, y, params);

  const double tol = 0.05;  // KKT tolerance plus numeric slack
  // Map support vectors for membership tests.
  const auto& svs = svm.support_vectors();
  const auto& coefs = svm.coefficients();
  auto is_sv = [&](const std::vector<double>& point) {
    for (const auto& sv : svs) {
      if (sv == point) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double margin = static_cast<double>(y[i]) * svm.decision(x[i]);
    if (!is_sv(x[i])) {
      EXPECT_GE(margin, 1.0 - tol) << "non-SV inside margin, point " << i;
    }
  }
  for (std::size_t s = 0; s < svs.size(); ++s) {
    const double alpha = std::fabs(coefs[s]);
    EXPECT_LE(alpha, params.c + 1e-9);
    if (alpha < params.c - 1e-6) {
      // Interior SV: sits near the margin.  SMO terminates when no joint
      // step can make progress, which can leave residual violations of a
      // few tenths; require the band, not exactness.
      int label = coefs[s] > 0 ? 1 : -1;
      const double margin = label * svm.decision(svs[s]);
      EXPECT_NEAR(margin, 1.0, 0.25) << "interior SV far off the margin";
    }
  }
}

TEST(BinarySvm, RestoreValidatesSizes) {
  BinarySvm svm;
  EXPECT_THROW(svm.restore({{1.0}}, {0.5, 0.5}, 0.0, SvmParams{}),
               std::invalid_argument);
}

TEST(BinarySvm, SpaceBytesCountsModel) {
  util::Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({rng.normal(-1.0, 0.5), 0.0});
    y.push_back(-1);
    x.push_back({rng.normal(1.0, 0.5), 0.0});
    y.push_back(+1);
  }
  BinarySvm svm;
  svm.train(x, y, SvmParams{.gamma = 1.0, .c = 1.0});
  EXPECT_EQ(svm.space_bytes(),
            (svm.support_vector_count() * 2 + svm.support_vector_count() + 1) *
                sizeof(double));
}

Dataset three_blobs(std::size_t per_class, util::Rng& rng) {
  Dataset data(3);
  const double centers[3][2] = {{0.0, 0.0}, {4.0, 0.0}, {2.0, 3.5}};
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data.add({rng.normal(centers[c][0], 0.4), rng.normal(centers[c][1], 0.4)},
               c);
    }
  }
  return data;
}

TEST(DagSvm, ThreeClassBlobs) {
  util::Rng rng(6);
  const Dataset data = three_blobs(40, rng);
  DagSvm model;
  model.train(data, SvmParams{.gamma = 1.0, .c = 100.0});
  EXPECT_EQ(model.num_classes(), 3);
  EXPECT_GE(model.evaluate(data).accuracy(), 0.98);
}

TEST(DagSvm, PredictBeforeTrainThrows) {
  const DagSvm model;
  EXPECT_THROW(model.predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(DagSvm, RequiresTwoClasses) {
  Dataset data(1);
  data.add({0.0}, 0);
  DagSvm model;
  EXPECT_THROW(model.train(data, SvmParams{}), std::invalid_argument);
}

TEST(DagSvm, MachineAccessorsAndCounts) {
  util::Rng rng(7);
  const Dataset data = three_blobs(20, rng);
  DagSvm model;
  model.train(data, SvmParams{.gamma = 1.0, .c = 10.0});
  EXPECT_NO_THROW(model.machine(0, 1));
  EXPECT_NO_THROW(model.machine(0, 2));
  EXPECT_NO_THROW(model.machine(1, 2));
  EXPECT_THROW(model.machine(1, 1), std::invalid_argument);
  EXPECT_GT(model.support_vector_count(), 0u);
  EXPECT_GT(model.space_bytes(), 0u);
}

TEST(DagSvm, PairwiseMachineOrientation) {
  // machine(i, j) must output +1 for class i and -1 for class j.
  util::Rng rng(8);
  const Dataset data = three_blobs(30, rng);
  DagSvm model;
  model.train(data, SvmParams{.gamma = 1.0, .c = 100.0});
  const BinarySvm& m01 = model.machine(0, 1);
  EXPECT_GT(m01.decision(std::vector<double>{0.0, 0.0}), 0.0);  // class 0
  EXPECT_LT(m01.decision(std::vector<double>{4.0, 0.0}), 0.0);  // class 1
}

TEST(MaxWinsSvm, AgreesWithDagOnSeparableBlobs) {
  util::Rng rng(10);
  const Dataset data = three_blobs(30, rng);
  DagSvm dag;
  dag.train(data, SvmParams{.gamma = 1.0, .c = 100.0});
  const MaxWinsSvm max_wins = MaxWinsSvm::from_dag(dag);
  EXPECT_EQ(max_wins.num_classes(), 3);
  // On well-separated data both prediction rules agree everywhere.
  for (const auto& s : data.samples()) {
    ASSERT_EQ(max_wins.predict(s.features), dag.predict(s.features));
  }
}

TEST(MaxWinsSvm, TrainsDirectly) {
  util::Rng rng(11);
  const Dataset data = three_blobs(25, rng);
  MaxWinsSvm model;
  model.train(data, SvmParams{.gamma = 1.0, .c = 100.0});
  EXPECT_GE(model.evaluate(data).accuracy(), 0.98);
}

TEST(MaxWinsSvm, PredictBeforeTrainThrows) {
  const MaxWinsSvm model;
  EXPECT_THROW(model.predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(DagSvm, FourClassProblem) {
  util::Rng rng(9);
  Dataset data(4);
  const double centers[4][2] = {{0, 0}, {4, 0}, {0, 4}, {4, 4}};
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 30; ++i) {
      data.add({rng.normal(centers[c][0], 0.3), rng.normal(centers[c][1], 0.3)},
               c);
    }
  }
  DagSvm model;
  model.train(data, SvmParams{.gamma = 1.0, .c = 100.0});
  EXPECT_EQ(model.machines().size(), 6u);
  EXPECT_GE(model.evaluate(data).accuracy(), 0.98);
}

}  // namespace
}  // namespace iustitia::ml
