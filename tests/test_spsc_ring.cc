// SPSC ring unit tests: geometry, FIFO order across wraparound, full/empty
// edges, the close()/drain termination protocol, and a two-thread hammer
// that tools/ci.sh also runs under TSan.
#include "runtime/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace iustitia::runtime {
namespace {

// Sanitized builds run the same logic at a fraction of the iteration
// count: TSan's happens-before bookkeeping makes each op ~20x slower, and
// the interleavings it checks do not need volume to be reached.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kHammerItems = 20'000;
#else
constexpr std::uint64_t kHammerItems = 200'000;
#endif

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FullAndEmptyEdges) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out)) << "fresh ring must be empty";
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99)) << "5th push into capacity 4 must fail";
  EXPECT_EQ(ring.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
  // The freed slots are reusable (indices keep counting up; wrap is a mask).
  EXPECT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
}

TEST(SpscRing, FifoOrderAcrossManyWraparounds) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Keep the ring partially full while indices lap the buffer many times.
  while (next_pop < 1000) {
    for (int burst = 0; burst < 3; ++burst) {
      if (!ring.try_push(std::uint64_t{next_push})) break;
      ++next_push;
    }
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRing, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(41)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 41);
}

TEST(SpscRing, CloseDrainTerminationProtocol) {
  SpscRing<int> ring(8);
  EXPECT_FALSE(ring.closed());
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  // Consumer side: the flag alone is not the end — everything pushed
  // before close() must still drain, and only then does try_pop fail.
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.try_pop(out));
}

// Producer and consumer on separate threads push/pop a long monotone
// sequence through a tiny ring, forcing constant full/empty collisions on
// the cached-index fast paths.  TSan checks the memory-order contract;
// the assertions check lossless FIFO delivery.
TEST(SpscRing, TwoThreadHammerDeliversEverythingInOrder) {
  SpscRing<std::uint64_t> ring(16);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kHammerItems; ++i) {
      while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
    ring.close();
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  for (;;) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
      continue;
    }
    if (ring.closed()) {
      while (ring.try_pop(out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      }
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kHammerItems);
}

// A producer spinning on a full ring must be released by a close() from
// the other side: the spin loop's give-up path is closed(), whose acquire
// load pairs with close()'s release store.  The consumer never pops, so
// observing the flag is the producer's ONLY way out — and because the
// ring stays full, the spin never reaches try_push's success path, which
// is what keeps the push-after-close DCHECK out of the race.
TEST(SpscRing, CloseReleasesProducerSpinningOnFullRing) {
  SpscRing<int> ring(4);
  int filled = 0;
  while (ring.try_push(int{filled})) ++filled;
  ASSERT_EQ(static_cast<std::size_t>(filled), ring.capacity());

  std::atomic<bool> spinning{false};
  std::atomic<bool> gave_up{false};
  std::thread producer([&ring, &spinning, &gave_up] {
    int v = -1;
    while (!ring.try_push(std::move(v))) {
      spinning.store(true, std::memory_order_release);
      if (ring.closed()) {
        gave_up.store(true, std::memory_order_release);
        return;
      }
      std::this_thread::yield();
    }
  });

  // Let the producer hit the full-ring spin before pulling the plug.
  while (!spinning.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  ring.close();
  producer.join();
  EXPECT_TRUE(gave_up.load(std::memory_order_acquire));

  // The abandoned push left no mark: the pre-close fill drains intact and
  // the ring ends empty.
  int out = -1;
  for (int i = 0; i < filled; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

}  // namespace
}  // namespace iustitia::runtime
