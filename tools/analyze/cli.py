"""CLI driver: load sources, run passes, gate against the baseline.

Exit codes: 0 clean (or all findings baselined), 1 new findings,
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import baseline as baseline_mod
import sarif as sarif_mod
from compdb import SourceUniverse, load_from_compdb, load_from_root
from cppmodel import FileModel, build_model
from findings import Finding, sort_key
from passes import PASSES


class AnalysisContext:
    """Everything a pass needs: the universe, parsed models, helpers."""

    def __init__(self, universe: SourceUniverse,
                 allowed_deps: dict[str, set[str]] | None = None):
        self.universe = universe
        self.allowed_deps = allowed_deps
        self.models: dict[str, FileModel] = {}
        for rel, text in universe.files.items():
            self.models[rel] = build_model(rel, text)
        # Include resolution: repo-style "module/header.h" relative to the
        # src/ root, or relative to the repo root (tests/bench headers).
        self._by_suffix: dict[str, str] = {}
        for rel in self.models:
            self._by_suffix[rel] = rel
            if rel.startswith("src/"):
                self._by_suffix.setdefault(rel[len("src/"):], rel)

    def resolve_include(self, target: str) -> str | None:
        return self._by_suffix.get(target)


def _default_compdb(repo_root: Path) -> Path | None:
    for build_dir in ("build", "build-lint", "build-asan", "build-tsan"):
        candidate = repo_root / build_dir / "compile_commands.json"
        if candidate.exists():
            return candidate
    return None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/analyze",
        description="Architecture-aware static analyzer for iustitia "
                    "(layering, lock discipline, dead code, API contracts).")
    parser.add_argument("--compdb", type=Path,
                        help="compile_commands.json driving TU discovery "
                             "(default: first of build*/compile_commands"
                             ".json)")
    parser.add_argument("--root", type=Path,
                        help="analyze a bare directory tree instead of a "
                             "compilation database (fixtures/tests)")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help=f"comma list from: {', '.join(PASSES)}")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text", help="stdout format")
    parser.add_argument("--sarif-out", type=Path,
                        help="also write SARIF 2.1.0 JSON to this file")
    parser.add_argument("--lock-graph-out", type=Path,
                        help="write the static lock-order graph (JSON) "
                             "here; tools/check_lock_graph.py compares "
                             "it against runtime-observed graphs from "
                             "IUSTITIA_DEADLOCK_DEBUG builds")
    parser.add_argument("--baseline", type=Path,
                        help="baseline JSON; findings listed there are "
                             "suppressed (new findings still fail)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "(refuses src/core and src/entropy)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary on success")
    args = parser.parse_args(argv)

    if args.root is not None:
        universe = load_from_root(args.root)
        repo_root = args.root.resolve()
    else:
        repo_root = Path(__file__).resolve().parent.parent.parent
        compdb = args.compdb or _default_compdb(repo_root)
        if compdb is None or not compdb.exists():
            print("analyze: no compile_commands.json found; configure a "
                  "build first (cmake --preset lint exports one without "
                  "building) or pass --root", file=sys.stderr)
            return 2
        try:
            universe = load_from_compdb(compdb, repo_root)
        except (ValueError, OSError) as err:
            print(f"analyze: {err}", file=sys.stderr)
            return 2
    if not universe.files:
        print("analyze: no sources found", file=sys.stderr)
        return 2

    ctx = AnalysisContext(universe)

    if args.lock_graph_out is not None:
        import json

        from passes import lockorder
        graph = lockorder.build_graph(ctx)
        args.lock_graph_out.write_text(json.dumps(graph, indent=2) + "\n")

    findings: list[Finding] = []
    for name in args.passes.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in PASSES:
            print(f"analyze: unknown pass '{name}' (have: "
                  f"{', '.join(PASSES)})", file=sys.stderr)
            return 2
        findings.extend(PASSES[name](ctx))
    findings.sort(key=sort_key)

    if args.write_baseline:
        if args.baseline is None:
            print("analyze: --write-baseline needs --baseline",
                  file=sys.stderr)
            return 2
        refused = baseline_mod.save(args.baseline, findings)
        print(f"analyze: baseline written to {args.baseline} "
              f"({len(findings) - len(refused)} finding(s))")
        if refused:
            print(f"analyze: {len(refused)} finding(s) in clean-prefix "
                  f"paths (src/core, src/entropy) were NOT baselined and "
                  f"must be fixed:", file=sys.stderr)
            for f in refused:
                print(f"  {f}", file=sys.stderr)
            return 1
        return 0

    suppressed: set[str] = set()
    if args.baseline is not None:
        try:
            suppressed = baseline_mod.load(args.baseline)
        except ValueError as err:
            print(f"analyze: {err}", file=sys.stderr)
            return 2
    new, baselined, stale = baseline_mod.split(findings, suppressed)

    sarif_doc = sarif_mod.to_sarif(new, repo_root.as_uri())
    if args.sarif_out is not None:
        import json
        args.sarif_out.write_text(json.dumps(sarif_doc, indent=2) + "\n")
    if args.format == "sarif":
        import json
        print(json.dumps(sarif_doc, indent=2))
    else:
        for f in new:
            print(f)

    n_files = len(universe.files)
    if new:
        print(f"analyze: {len(new)} new finding(s) in {n_files} files "
              f"({len(baselined)} baselined)", file=sys.stderr)
        return 1
    if stale:
        print(f"analyze: note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings); "
              f"regenerate with --write-baseline", file=sys.stderr)
    if not args.quiet and args.format == "text":
        print(f"analyze: clean ({n_files} files, "
              f"{len(baselined)} baselined finding(s))")
    return 0
