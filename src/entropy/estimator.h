// Streaming (delta, epsilon)-approximation of entropy (paper Section 4.4).
//
// For widths k >= 2 (|f_k| >> b), Iustitia estimates
//   S_k = sum_i m_ik * ln(m_ik)
// with the algorithm of Lall et al. (SIGMETRICS 2006), built on the
// Alon-Matias-Szegedy frequency-moment sampling:
//   1. pick g*z random gram positions in the buffer,
//   2. for each position, count the occurrences c of that gram from the
//      position to the end of the buffer,
//   3. form the unbiased estimator m' * (c*ln c - (c-1)*ln(c-1)),
//   4. average within each of the g groups of z estimators,
//   5. take the median of the g group means.
// The estimate has relative error at most epsilon with probability at least
// 1 - delta.  Width 1 always uses exact counting because |f_1| = 256 is not
// >> b (the estimator's precondition fails), exactly as the paper states.
//
// Counter sizing (paper Formulas (3) and (4)):
//   z_k = ceil(32 * log_{|f_k|}(b) / epsilon^2),   g = ceil(2 * log2(1/delta))
//   K_phi = 8 * sum_{k in phi, k != 1} 1/k
//   epsilon > sqrt(K_phi * log2(b) / alpha * log2(1/delta))
#ifndef IUSTITIA_ENTROPY_ESTIMATOR_H_
#define IUSTITIA_ENTROPY_ESTIMATOR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "entropy/entropy_vector.h"
#include "util/random.h"

namespace iustitia::entropy {

// Accuracy knobs of the (delta, epsilon)-approximation.
struct EstimatorParams {
  double epsilon = 0.25;  // relative error bound, in (0, 1]
  double delta = 0.75;    // failure probability bound, in (0, 1)
};

// Number of estimator groups g = ceil(2 * log2(1/delta)), at least 1.
int estimator_group_count(double delta) noexcept;

// Per-group sample count z_k = ceil(32 * log_{|f_k|}(b) / epsilon^2),
// at least 1.  `buffer_size` is the byte buffer length b.
int estimator_samples_per_group(int width, std::size_t buffer_size,
                                double epsilon) noexcept;

// Feature-set coefficient K_phi = 8 * sum_{k != 1} 1/k over `widths`.
double feature_set_coefficient(std::span<const int> widths) noexcept;

// Lower bound on epsilon so that estimation uses fewer counters than exact
// counting with `alpha` counters (Formula (4)).
double epsilon_lower_bound(double k_phi, std::size_t buffer_size,
                           double alpha, double delta) noexcept;

// Estimates S_k = sum m_ik ln m_ik of the k-grams of `data` using g groups
// of z samples.  Deterministic given `rng` state.
double estimate_sum_count_log_count(std::span<const std::uint8_t> data,
                                    int width, int samples_per_group,
                                    int groups, util::Rng& rng);

// Estimates the entropy vector for `widths` over `data`.
//
// Width 1 is computed exactly (see above); every other width uses the
// sketch.  space_bytes charges 4 bytes per sketch counter plus the exact
// width-1 table, which is the accounting behind Table 3.
EntropyVectorResult estimate_entropy_vector(std::span<const std::uint8_t> data,
                                            std::span<const int> widths,
                                            const EstimatorParams& params,
                                            util::Rng& rng);

// Space in bytes the estimator needs for the given configuration, without
// running it (4 bytes per counter; exact 256-entry table for width 1).
std::size_t estimator_space_bytes(std::span<const int> widths,
                                  std::size_t buffer_size,
                                  const EstimatorParams& params) noexcept;

// Realizes Formula (4) as a configuration helper: picks (epsilon, delta)
// so the estimator fits within `max_counters` sketch counters (exclusive
// of the exact width-1 table) for the given feature set and buffer size.
// Tries the candidate deltas from most to least confident and returns the
// first that admits an epsilon <= `max_epsilon`; std::nullopt when even
// the loosest delta cannot fit the budget.
std::optional<EstimatorParams> choose_estimator_params(
    std::span<const int> widths, std::size_t buffer_size,
    std::size_t max_counters, double max_epsilon = 1.0);

}  // namespace iustitia::entropy

#endif  // IUSTITIA_ENTROPY_ESTIMATOR_H_
