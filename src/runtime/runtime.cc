#include "runtime/runtime.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.h"
#include "util/rt_guard.h"
#include "util/timer.h"

namespace iustitia::runtime {

namespace {

// Progressive wait for a full/empty ring: spin briefly (the peer is
// usually just a few instructions away), then yield (essential when
// producer and consumer share a core), then sleep so a long stall does
// not burn a CPU.
class Backoff {
 public:
  void pause() {
    // The hot loops reach this only when a ring stalls; the deliberate
    // yield/sleep ladder is the documented cold branch of that wait.
    // analyze: hotpath-allow(may-block)
    ++rounds_;
    if (rounds_ < 64) return;
    if (rounds_ < 128) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  void reset() noexcept { rounds_ = 0; }

 private:
  unsigned rounds_ = 0;
};

void pin_current_thread(std::size_t worker_index) {
#ifdef __linux__
  const unsigned cpus = std::thread::hardware_concurrency();
  if (cpus == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker_index % cpus, &set);
  // Best effort: a failed pin (cgroup mask, exotic topology) just means
  // the scheduler keeps choosing, which is the unpinned default anyway.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker_index;
#endif
}

}  // namespace

Runtime::Runtime(const std::function<core::FlowNatureModel()>& model_factory,
                 const RuntimeOptions& options)
    : options_(options),
      engine_(model_factory, options.engine, options.shards),
      queues_(options.output_queue_capacity),
      metrics_(options.shards),
      folded_delays_(options.shards, 0) {
  rings_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    rings_.push_back(
        std::make_unique<SpscRing<net::Packet>>(options_.ring_capacity));
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::start(PacketSource& source) {
  util::MutexLock lock(lifecycle_mu_);
  CHECK(!started_) << "Runtime is single-shot; construct a new one";
  started_ = true;
  workers_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
  PacketSource* source_ptr = &source;
  dispatcher_ = std::thread([this, source_ptr] { dispatch_loop(source_ptr); });
}

void Runtime::wait() {
  util::MutexLock lock(lifecycle_mu_);
  if (!started_ || joined_) return;
  join_threads_locked();
  joined_ = true;
  finish_flush();
}

void Runtime::stop() {
  // Set the flag before touching the lifecycle lock: a concurrent wait()
  // holds the lock while joining, and this store is what lets its joins
  // finish early.
  stop_requested_.store(true, std::memory_order_relaxed);
  wait();
}

bool Runtime::running() const {
  util::MutexLock lock(lifecycle_mu_);
  return started_ && !joined_;
}

void Runtime::join_threads_locked() {
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

// Real-time contract: once packets flow, the dispatcher neither touches
// the heap nor takes a lock — payloads move by buffer handoff into the
// rings.  The only tolerated exceptions are documented AllowScopes.
// analyze: hotpath
void Runtime::dispatch_loop(PacketSource* source) {
  Backoff backoff;
  {
    util::rt::GuardRegion guard;
    while (!stop_requested_.load(std::memory_order_relaxed)) {
      std::optional<net::Packet> packet;
      {
        // Source refill sits upstream of the hot handoff: replay files
        // and generators may read, allocate payload, or block on I/O.
        util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, may-throw, unresolved-call)
        packet = source->next();
      }
      if (!packet.has_value()) break;
      metrics_.on_source_packet();
      const std::size_t shard = engine_.shard_of(packet->key);
      SpscRing<net::Packet>& ring = *rings_[shard];
      if (ring.try_push(std::move(*packet))) {
        metrics_.on_push(shard, ring.size_approx());
        continue;
      }
      if (options_.backpressure == BackpressurePolicy::kDrop) {
        metrics_.on_drop(shard);
        {
          // Retire the refused payload here, not at the iteration
          // boundary where the optional's destructor would free it
          // inside the bare guard region.
          util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate, unresolved-call)
          packet.reset();
        }
        continue;
      }
      // kBlock: stall until the worker frees a slot.  A stop() request
      // abandons the held packet (counted as a drop) so shutdown can never
      // deadlock against a full ring.
      backoff.reset();
      bool pushed = false;
      while (!stop_requested_.load(std::memory_order_relaxed)) {
        if (ring.try_push(std::move(*packet))) {
          pushed = true;
          break;
        }
        backoff.pause();
      }
      if (!pushed) {
        metrics_.on_drop(shard);
        {
          // Shutdown abandons the held packet; free its payload under a
          // scope instead of at the loop exit.
          util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate, unresolved-call)
          packet.reset();
        }
        break;
      }
      metrics_.on_push(shard, ring.size_approx());
    }
  }
  // Poison pill: every worker terminates once its ring is closed *and*
  // drained, whether we got here by source exhaustion or by stop().
  for (auto& ring : rings_) ring->close();
}

// Real-time contract: the steady-state worker path is the engine's
// CDB-hit fast lane — no heap, no locks, no throws.  Unknown-flow setup
// and the output handoff are the documented cold branches (see the
// AllowScopes in core/engine.cc and core/output_queues.cc).
// analyze: hotpath
void Runtime::worker_loop(std::size_t shard) {
  if (options_.pin_workers) {
    // Once-per-thread startup cost, ahead of the guarded loop.
    // analyze: hotpath-allow(unresolved-call)
    pin_current_thread(shard);
  }

  // Single-owner drive for the whole run: this thread is the only one
  // touching the shard until the dispatcher's close() and our exit, which
  // the post-join finish_flush() ordering respects.
  core::Iustitia& eng = engine_.shard(shard);
  SpscRing<net::Packet>& ring = *rings_[shard];
  const std::size_t sample_every = options_.latency_sample_every;
  std::size_t folded = 0;
  std::uint64_t processed = 0;

  const auto process = [&](net::Packet& packet) {
    metrics_.on_pop(shard);
    ++processed;
    datagen::FileClass label = datagen::FileClass::kText;
    core::PacketAction action;
    if (sample_every != 0 && processed % sample_every == 0) {
      const util::Stopwatch watch;
      action = eng.on_packet(packet, &label);
      metrics_.record_engine_latency(watch.elapsed_micros());
    } else {
      action = eng.on_packet(packet, &label);
    }
    // Fold classifications as they happen (including flush_idle batches)
    // so a live snapshot() sees per-nature counts move in real time.
    const auto& delays = eng.delays();
    for (; folded < delays.size(); ++folded) {
      metrics_.on_classified(delays[folded].label);
    }
    if (action == core::PacketAction::kForwarded ||
        action == core::PacketAction::kClassifiedNow) {
      // The handoff may touch the heap (lock + deque node, see
      // output_queues.cc) — and when the queue refuses, the by-value
      // parameter is destroyed *here*, in the caller (Itanium ABI), so
      // the payload retirement needs this scope too.
      util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
      queues_.enqueue(label, std::move(packet));
    } else {
      // A buffered/dropped packet keeps its payload; the next try_pop
      // move-assign would free it mid-guard, so retire it here.
      util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate, unresolved-call)
      packet = net::Packet();
    }
  };

  Backoff backoff;
  net::Packet packet;
  {
    util::rt::GuardRegion guard;
    for (;;) {
      if (ring.try_pop(packet)) {
        backoff.reset();
        process(packet);
        continue;
      }
      if (ring.closed()) {
        // Flag observed: one more drain pass is definitive (see
        // spsc_ring.h termination protocol).
        while (ring.try_pop(packet)) process(packet);
        break;
      }
      backoff.pause();
    }
  }
  folded_delays_[shard] = folded;
}

void Runtime::finish_flush() {
  for (std::size_t s = 0; s < engine_.shard_count(); ++s) {
    core::Iustitia& eng = engine_.shard(s);
    eng.flush_all();
    const auto& delays = eng.delays();
    for (std::size_t i = folded_delays_[s]; i < delays.size(); ++i) {
      metrics_.on_classified(delays[i].label);
    }
    folded_delays_[s] = delays.size();
  }
}

}  // namespace iustitia::runtime
