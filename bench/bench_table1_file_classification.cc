// Reproduces Table 1 and Figures 2(b)/(c): file classification with the
// full entropy vector h1..h10, 10-fold cross-validation, CART vs SVM-RBF
// (gamma=50, C=1000, DAGSVM).
//
// Paper numbers (Table 1): CART total 79.19%; SVM total 86.51% with
// encrypted accuracy improving from 78.25% to 96.79%.  The shape to
// preserve: SVM-RBF beats CART overall, with the largest gain on the
// encrypted class.
#include "bench/bench_common.h"

#include <iostream>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

int run() {
  banner("Table 1 + Fig. 2(b)/(c): file classification, h1..h10",
         "CART ~79% vs SVM-RBF(gamma=50, C=1000) ~86% total accuracy");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 120);
  const std::size_t folds = env_size("IUSTITIA_CV_FOLDS", 10);
  std::cout << "corpus: " << files << " files/class, " << folds
            << "-fold stratified CV (override with IUSTITIA_FILES_PER_CLASS"
               " / IUSTITIA_CV_FOLDS)\n\n";

  const auto corpus = standard_corpus(files);
  core::TrainerOptions extract;
  extract.method = core::TrainingMethod::kWholeFile;
  extract.widths = entropy::full_feature_widths();
  const ml::Dataset data = core::build_entropy_dataset(corpus, extract);

  std::cout << "-- Fig. 2(b): CART per-fold accuracy --\n";
  const ml::ConfusionMatrix cart = run_cv(
      data, folds, ml::make_cart_factory(), /*seed=*/101, true, "CART");

  std::cout << "-- Fig. 2(c): SVM-RBF per-fold accuracy --\n";
  ml::SvmParams svm;
  svm.gamma = 50.0;
  svm.c = 1000.0;
  const ml::ConfusionMatrix svm_matrix = run_cv(
      data, folds, ml::make_svm_factory(svm), /*seed=*/101, true, "SVM");

  std::cout << "-- Table 1: Decision Tree (CART) --\n";
  print_class_breakdown(cart, "CART");
  std::cout << "-- Table 1: SVM - RBF kernel (gamma=50, C=1000) --\n";
  print_class_breakdown(svm_matrix, "SVM");

  std::cout << "paper:    CART total 79.19%, SVM total 86.51%\n";
  std::cout << "measured: CART total " << util::fmt_percent(cart.accuracy())
            << ", SVM total " << util::fmt_percent(svm_matrix.accuracy())
            << "\n";
  std::cout << "shape check: SVM beats CART: "
            << (svm_matrix.accuracy() > cart.accuracy() ? "YES" : "NO")
            << "; SVM encrypted-class gain: "
            << util::fmt_percent(svm_matrix.class_accuracy(2) -
                                 cart.class_accuracy(2))
            << "\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
