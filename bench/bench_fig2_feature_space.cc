// Reproduces Figure 2(a): the (h1, h2, h3) feature-space structure of the
// three file classes.  The paper's scatter shows text lowest, encrypted
// highest, binary in between, with partial overlap.
#include <array>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

int run() {
  banner("Fig. 2(a): dataset (H_F) feature space, h1/h2/h3",
         "text lowest entropy, encrypted highest, binary in between");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 150);
  const auto corpus = standard_corpus(files);
  const std::vector<int> widths{1, 2, 3};

  util::RunningStats stats[3][3];  // [class][feature]
  std::vector<std::array<double, 3>> samples[3];
  for (const auto& file : corpus) {
    const auto h = entropy::entropy_vector(file.bytes, widths);
    const int label = static_cast<int>(file.label);
    for (int f = 0; f < 3; ++f) {
      stats[label][f].add(h[static_cast<std::size_t>(f)]);
    }
    if (samples[label].size() < 8) {
      samples[label].push_back({h[0], h[1], h[2]});
    }
  }

  util::Table table({"class", "h1 mean±sd", "h2 mean±sd", "h3 mean±sd",
                     "h1 range"});
  static constexpr const char* kNames[3] = {"text", "binary", "encrypted"};
  for (int c = 0; c < 3; ++c) {
    table.add_row(
        {kNames[c],
         util::fmt(stats[c][0].mean(), 3) + " ± " +
             util::fmt(stats[c][0].stddev(), 3),
         util::fmt(stats[c][1].mean(), 3) + " ± " +
             util::fmt(stats[c][1].stddev(), 3),
         util::fmt(stats[c][2].mean(), 3) + " ± " +
             util::fmt(stats[c][2].stddev(), 3),
         "[" + util::fmt(stats[c][0].min(), 3) + ", " +
             util::fmt(stats[c][0].max(), 3) + "]"});
  }
  table.render(std::cout);

  std::cout << "\nsample points (h1, h2, h3) per class:\n";
  for (int c = 0; c < 3; ++c) {
    std::cout << "  " << kNames[c] << ":";
    for (const auto& p : samples[c]) {
      std::cout << " (" << util::fmt(p[0], 2) << "," << util::fmt(p[1], 2)
                << "," << util::fmt(p[2], 2) << ")";
    }
    std::cout << '\n';
  }

  const bool ordering = stats[0][0].mean() < stats[1][0].mean() &&
                        stats[1][0].mean() < stats[2][0].mean();
  std::cout << "\nshape check: mean entropy ordering text < binary < "
            << "encrypted: " << (ordering ? "YES" : "NO") << '\n';
  return ordering ? 0 : 1;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
