// Tests for entropy/gram_counter.h, including the chunk-boundary stitching
// property the streaming engine depends on.
#include "entropy/gram_counter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::entropy {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(GramCounter, RejectsInvalidWidths) {
  EXPECT_THROW(GramCounter(0), std::invalid_argument);
  EXPECT_THROW(GramCounter(17), std::invalid_argument);
  EXPECT_NO_THROW(GramCounter(1));
  EXPECT_NO_THROW(GramCounter(16));
}

TEST(GramCounter, Width1CountsBytes) {
  GramCounter c(1);
  const auto data = bytes_of("aabbbz");
  c.add(data);
  EXPECT_EQ(c.total_grams(), 6u);
  EXPECT_EQ(c.count('a'), 2u);
  EXPECT_EQ(c.count('b'), 3u);
  EXPECT_EQ(c.count('z'), 1u);
  EXPECT_EQ(c.count('q'), 0u);
  EXPECT_EQ(c.distinct(), 3u);
}

TEST(GramCounter, Width2CountsOverlappingPairs) {
  GramCounter c(2);
  const auto data = bytes_of("abab");
  c.add(data);
  // Pairs: ab, ba, ab.
  EXPECT_EQ(c.total_grams(), 3u);
  const GramKey ab = pack_gram(data.data(), 2);
  EXPECT_EQ(c.count(ab), 2u);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(GramCounter, PackGramIsBigEndian) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  EXPECT_EQ(static_cast<std::uint64_t>(pack_gram(data, 3)), 0x010203u);
  EXPECT_EQ(static_cast<std::uint64_t>(pack_gram(data, 1)), 0x01u);
}

TEST(GramCounter, ShortInputYieldsNoGrams) {
  GramCounter c(4);
  c.add(bytes_of("abc"));
  EXPECT_EQ(c.total_grams(), 0u);
  EXPECT_EQ(c.distinct(), 0u);
  EXPECT_EQ(c.sum_count_log_count(), 0.0);
}

TEST(GramCounter, SumCountLogCountMatchesHandComputation) {
  GramCounter c(1);
  c.add(bytes_of("aaabb"));  // counts: a=3, b=2
  const double expected = 3.0 * std::log(3.0) + 2.0 * std::log(2.0);
  EXPECT_NEAR(c.sum_count_log_count(), expected, 1e-12);
}

TEST(GramCounter, ResetClearsEverything) {
  GramCounter c(3);
  c.add(bytes_of("hello world"));
  c.reset();
  EXPECT_EQ(c.total_grams(), 0u);
  EXPECT_EQ(c.total_bytes(), 0u);
  c.add(bytes_of("xy"));
  c.add(bytes_of("z"));
  EXPECT_EQ(c.total_grams(), 1u);  // "xyz" across the boundary
}

TEST(GramCounter, ForEachVisitsAllCounts) {
  GramCounter c(2);
  c.add(bytes_of("abcabc"));
  std::uint64_t total = 0;
  std::size_t entries = 0;
  c.for_each([&](GramKey, std::uint64_t count) {
    total += count;
    ++entries;
  });
  EXPECT_EQ(total, c.total_grams());
  EXPECT_EQ(entries, c.distinct());
}

TEST(GramCounter, IncrementalSumMatchesRecomputation) {
  // Property: the O(1)-maintained S must equal the O(distinct) recompute
  // after any sequence of adds, for all widths.
  util::Rng rng(31);
  for (const int width : {1, 2, 3, 5, 10}) {
    GramCounter counter(width);
    for (int chunk = 0; chunk < 10; ++chunk) {
      std::vector<std::uint8_t> data(
          static_cast<std::size_t>(rng.uniform_int(0, 300)));
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(16));
      counter.add(data);
      ASSERT_NEAR(counter.sum_count_log_count(),
                  counter.sum_count_log_count_recomputed(), 1e-9)
          << "width " << width << " chunk " << chunk;
    }
    counter.reset();
    EXPECT_DOUBLE_EQ(counter.sum_count_log_count(), 0.0);
  }
}

TEST(GramCounter, SpaceBytesPositiveAndGrowsWithDistinct) {
  GramCounter small(3), large(3);
  util::Rng rng(1);
  std::vector<std::uint8_t> a(64), b(4096);
  rng.fill_bytes(a);
  rng.fill_bytes(b);
  small.add(a);
  large.add(b);
  EXPECT_GT(small.space_bytes(), 0u);
  EXPECT_GT(large.space_bytes(), small.space_bytes());
}

// Property: feeding data in arbitrary chunk sizes must produce identical
// counts to feeding it at once, for every width.
class ChunkingProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChunkingProperty, ChunkedEqualsWhole) {
  const int width = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(width) * 977);
  std::vector<std::uint8_t> data(701);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.next_below(7));  // small alphabet
  }

  GramCounter whole(width);
  whole.add(data);

  for (const std::size_t chunk : {1u, 2u, 3u, 5u, 64u, 700u}) {
    GramCounter chunked(width);
    std::size_t at = 0;
    while (at < data.size()) {
      const std::size_t take = std::min(chunk, data.size() - at);
      chunked.add(std::span<const std::uint8_t>(data.data() + at, take));
      at += take;
    }
    ASSERT_EQ(chunked.total_grams(), whole.total_grams())
        << "width " << width << " chunk " << chunk;
    ASSERT_EQ(chunked.distinct(), whole.distinct());
    ASSERT_NEAR(chunked.sum_count_log_count(), whole.sum_count_log_count(),
                1e-9);
    // Spot-check individual counts.
    whole.for_each([&](GramKey key, std::uint64_t count) {
      ASSERT_EQ(chunked.count(key), count);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, ChunkingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 10, 16));

}  // namespace
}  // namespace iustitia::entropy
