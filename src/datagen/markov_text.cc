#include "datagen/markov_text.h"

#include <stdexcept>

namespace iustitia::datagen {

std::string_view seed_corpus() noexcept {
  // Original prose written for this repository; chosen to cover ordinary
  // English letter statistics plus the punctuation and digits that appear
  // in documents, manuals, and logs.
  static constexpr std::string_view kSeed =
      "The measurement of network traffic begins with a simple question: "
      "what kind of content is moving through the wire? An operator who can "
      "answer that question quickly can schedule, protect, and account for "
      "the traffic without ever reading a single payload byte in full. The "
      "idea explored here is that the statistical texture of bytes carries "
      "enough signal to answer the question on its own. Plain language is "
      "repetitive; letters arrive in familiar clusters, spaces divide the "
      "stream into short words, and a handful of symbols do most of the "
      "work. Compiled programs and media files are denser, but they still "
      "carry headers, tables, and long runs of structure that keep their "
      "randomness well below the ceiling. Ciphertext, by design, shows no "
      "texture at all. Every byte value appears about as often as every "
      "other, and no window into the stream looks different from any other "
      "window.\n\n"
      "A practical system built on this observation has to work with small "
      "samples. Waiting for a megabyte of payload defeats the purpose of "
      "early classification, so the decision must rest on the first few "
      "dozen bytes that cross the link. Fortunately the texture of a stream "
      "is established early. The opening lines of a document look like the "
      "rest of the document, the first block of an archive looks like the "
      "later blocks, and the first block of ciphertext is as featureless as "
      "the millionth. There are exceptions, of course. Many application "
      "protocols begin with a short readable preamble before the payload "
      "proper, and a classifier that ignores this will happily label a "
      "compressed image as prose because it saw a polite greeting first. "
      "Stripping recognizable preambles, or simply skipping a fixed number "
      "of bytes, restores the signal.\n\n"
      "Speed is the remaining constraint. A counter for every possible "
      "pattern of several bytes would be enormous, yet the sample itself is "
      "tiny, so nearly all of those counters would stay at zero. Sampling "
      "the stream and estimating the statistic of interest trades a little "
      "accuracy for a great deal of memory, and the trade can be tuned with "
      "two dials: how wrong the estimate may be, and how often it may be "
      "wrong at all. With sensible settings the whole decision fits in a "
      "few hundred bytes of state per flow and a few hundred microseconds "
      "of work, which is fast enough to keep pace with a busy gateway.\n\n"
      "None of this requires knowing which application produced the "
      "traffic. Port numbers lie, protocol fields can be forged, and new "
      "applications appear every month, but arithmetic on byte frequencies "
      "is indifferent to all of that. The label it produces is coarse, just "
      "three words: text, binary, or encrypted. Coarse labels are still "
      "useful. A logging system can keep readable traffic for search, a "
      "security appliance can route binary streams to the scanners that "
      "understand them, and a quality of service policy can give encrypted "
      "transactions the priority their contents suggest they deserve. The "
      "numbers 0, 1, 2, 3, 4, 5, 6, 7, 8, and 9 appear too, in tables and "
      "in version strings such as 2.4.1 or 10.0.3, and so do parentheses "
      "(like these), quotes \"like these\", and the occasional semicolon; "
      "a faithful model of documents must include them all.\n";
  return kSeed;
}

MarkovText::MarkovText(std::string_view corpus, int order) : order_(order) {
  if (order < 1) throw std::invalid_argument("MarkovText: order must be >= 1");
  if (corpus.size() < static_cast<std::size_t>(order) + 1) {
    throw std::invalid_argument("MarkovText: corpus shorter than order + 1");
  }
  const auto k = static_cast<std::size_t>(order);
  for (std::size_t i = 0; i + k < corpus.size(); ++i) {
    const std::string context(corpus.substr(i, k));
    const char next = corpus[i + k];
    Transitions& t = transitions_[context];
    bool found = false;
    for (std::size_t j = 0; j < t.next_chars.size(); ++j) {
      if (t.next_chars[j] == next) {
        ++t.counts[j];
        found = true;
        break;
      }
    }
    if (!found) {
      t.next_chars.push_back(next);
      t.counts.push_back(1);
    }
  }
  contexts_.reserve(transitions_.size());
  for (const auto& [context, transitions] : transitions_) {
    contexts_.push_back(context);
  }
}

const MarkovText& MarkovText::english(int order) {
  static const MarkovText order2(seed_corpus(), 2);
  static const MarkovText order3(seed_corpus(), 3);
  return order == 2 ? order2 : order3;
}

std::string MarkovText::generate(std::size_t length, util::Rng& rng) const {
  std::string out;
  out.reserve(length + static_cast<std::size_t>(order_));
  std::string context =
      contexts_[static_cast<std::size_t>(rng.next_below(contexts_.size()))];
  out += context;
  while (out.size() < length) {
    const auto it = transitions_.find(context);
    if (it == transitions_.end()) {
      // Dead end (corpus suffix): restart from a random context.
      context =
          contexts_[static_cast<std::size_t>(rng.next_below(contexts_.size()))];
      continue;
    }
    const Transitions& t = it->second;
    std::uint64_t total = 0;
    for (const std::uint32_t c : t.counts) total += c;
    std::uint64_t target = rng.next_below(total);
    char next = t.next_chars.back();
    for (std::size_t j = 0; j < t.counts.size(); ++j) {
      if (target < t.counts[j]) {
        next = t.next_chars[j];
        break;
      }
      target -= t.counts[j];
    }
    out.push_back(next);
    context = out.substr(out.size() - static_cast<std::size_t>(order_));
  }
  out.resize(length);
  return out;
}

std::string random_word(util::Rng& rng, std::size_t min_len,
                        std::size_t max_len) {
  static constexpr std::string_view kConsonants = "bcdfghjklmnprstvwz";
  static constexpr std::string_view kVowels = "aeiou";
  const auto len = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(min_len),
                      static_cast<std::int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  bool vowel = rng.chance(0.4);
  for (std::size_t i = 0; i < len; ++i) {
    const std::string_view pool = vowel ? kVowels : kConsonants;
    out.push_back(pool[rng.next_below(pool.size())]);
    vowel = !vowel;
  }
  return out;
}

}  // namespace iustitia::datagen
