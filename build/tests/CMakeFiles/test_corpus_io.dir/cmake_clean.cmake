file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_io.dir/test_corpus_io.cc.o"
  "CMakeFiles/test_corpus_io.dir/test_corpus_io.cc.o.d"
  "test_corpus_io"
  "test_corpus_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
