// Tests for util/stats.h.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace iustitia::util {
namespace {

TEST(Summarize, EmptyYieldsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(QuantileSorted, InterpolatesLinearly) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 10.0);
}

TEST(MeanStddevMedian, Basics) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(median(v), 4.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(EmpiricalCdf, EvaluateMatchesDefinition) {
  const std::vector<double> v{1, 2, 2, 3, 10};
  const EmpiricalCdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf.evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(1.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf.evaluate(2.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.evaluate(9.99), 0.8);
  EXPECT_DOUBLE_EQ(cdf.evaluate(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  const EmpiricalCdf cdf(v);
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(cdf.quantile(0.9), 90.0, 1.0);
}

TEST(EmpiricalCdf, PointsDownsampleEndsAtOne) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  const EmpiricalCdf cdf(v);
  const auto pts = cdf.points(10);
  ASSERT_FALSE(pts.empty());
  EXPECT_LE(pts.size(), 12u);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, AddNWeights) {
  Histogram h(0.0, 1.0, 2);
  h.add_n(0.25, 10);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> v{3, 1, 4, 1, 5, 9, 2, 6};
  RunningStats rs;
  for (const double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace iustitia::util
