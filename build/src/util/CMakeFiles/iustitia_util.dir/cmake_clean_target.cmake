file(REMOVE_RECURSE
  "libiustitia_util.a"
)
