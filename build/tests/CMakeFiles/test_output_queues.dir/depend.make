# Empty dependencies file for test_output_queues.
# This may be replaced when dependencies are built.
