// Tests for ml/dataset.h: invariants of stratified splitting that the
// cross-validation experiments rely on.
#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace iustitia::ml {
namespace {

Dataset three_class_dataset(std::size_t per_class) {
  Dataset data(3);
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data.add({static_cast<double>(c), static_cast<double>(i)}, c);
    }
  }
  return data;
}

TEST(Dataset, AddFixesDimensionality) {
  Dataset data(2);
  data.add({1.0, 2.0}, 0);
  EXPECT_EQ(data.feature_count(), 2u);
  EXPECT_THROW(data.add({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(data.add({1.0, 2.0, 3.0}, 1), std::invalid_argument);
}

TEST(Dataset, RejectsOutOfRangeLabels) {
  Dataset data(2);
  EXPECT_THROW(data.add({1.0}, 2), std::invalid_argument);
  EXPECT_THROW(data.add({1.0}, -1), std::invalid_argument);
}

TEST(Dataset, GrowsClassesWhenUnset) {
  Dataset data;
  data.add({1.0}, 0);
  data.add({2.0}, 4);
  EXPECT_EQ(data.num_classes(), 5);
}

TEST(Dataset, ClassCounts) {
  const Dataset data = three_class_dataset(7);
  const auto counts = data.class_counts();
  ASSERT_EQ(counts.size(), 3u);
  for (const std::size_t c : counts) EXPECT_EQ(c, 7u);
}

TEST(Dataset, SubsetSelectsRows) {
  const Dataset data = three_class_dataset(2);
  const std::size_t rows[] = {0, 5};
  const Dataset sub = data.subset(rows);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].features, data[0].features);
  EXPECT_EQ(sub[1].features, data[5].features);
}

TEST(Dataset, ProjectSelectsColumnsInOrder) {
  Dataset data(1);
  data.add({1.0, 2.0, 3.0}, 0);
  const std::size_t cols[] = {2, 0};
  const Dataset proj = data.project(cols);
  EXPECT_EQ(proj[0].features, (std::vector<double>{3.0, 1.0}));
  const std::size_t bad[] = {5};
  EXPECT_THROW(data.project(bad), std::out_of_range);
}

TEST(Dataset, BalancedSampleCapsEachClass) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) data.add({static_cast<double>(i)}, 0);
  for (int i = 0; i < 5; ++i) data.add({static_cast<double>(i)}, 1);
  util::Rng rng(1);
  const Dataset balanced = data.balanced_sample(8, rng);
  const auto counts = balanced.class_counts();
  EXPECT_EQ(counts[0], 8u);
  EXPECT_EQ(counts[1], 5u);  // fewer available than requested
}

TEST(StratifiedFolds, PartitionCoversEveryRowOnce) {
  const Dataset data = three_class_dataset(10);
  util::Rng rng(2);
  const auto folds = stratified_folds(data, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    for (const std::size_t row : fold) {
      EXPECT_TRUE(seen.insert(row).second) << "row " << row << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), data.size());
}

TEST(StratifiedFolds, EachFoldIsClassBalanced) {
  const Dataset data = three_class_dataset(10);
  util::Rng rng(3);
  const auto folds = stratified_folds(data, 5, rng);
  for (const auto& fold : folds) {
    int per_class[3] = {0, 0, 0};
    for (const std::size_t row : fold) ++per_class[data[row].label];
    EXPECT_EQ(per_class[0], 2);
    EXPECT_EQ(per_class[1], 2);
    EXPECT_EQ(per_class[2], 2);
  }
}

TEST(StratifiedFolds, RejectsZeroFolds) {
  const Dataset data = three_class_dataset(2);
  util::Rng rng(4);
  EXPECT_THROW(stratified_folds(data, 0, rng), std::invalid_argument);
}

TEST(StratifiedFoldSplit, TrainTestDisjointAndComplete) {
  const Dataset data = three_class_dataset(8);
  util::Rng rng(5);
  const auto folds = stratified_folds(data, 4, rng);
  const Split split = stratified_fold_split(data, folds, 1);
  EXPECT_EQ(split.test.size(), 6u);
  EXPECT_EQ(split.train.size(), 18u);
  EXPECT_THROW(stratified_fold_split(data, folds, 4), std::out_of_range);
}

TEST(StratifiedHoldout, FractionAndStratification) {
  const Dataset data = three_class_dataset(10);
  util::Rng rng(6);
  const Split split = stratified_holdout(data, 0.7, rng);
  EXPECT_EQ(split.train.size(), 21u);
  EXPECT_EQ(split.test.size(), 9u);
  const auto train_counts = split.train.class_counts();
  for (const std::size_t c : train_counts) EXPECT_EQ(c, 7u);
}

TEST(Dataset, ShuffleKeepsContents) {
  Dataset data = three_class_dataset(5);
  util::Rng rng(7);
  const auto before = data.class_counts();
  data.shuffle(rng);
  EXPECT_EQ(data.class_counts(), before);
  EXPECT_EQ(data.size(), 15u);
}

}  // namespace
}  // namespace iustitia::ml
