// pcap workflow: write a synthetic gateway trace to a standard pcap file,
// then read it back and classify every flow — the offline-analysis shape a
// downstream user would run against their own captures.
//
// Run:  ./pcap_inspect [trace.pcap]
//   With no argument, a temporary pcap is generated, analyzed, and
//   removed.  With a path argument, that pcap (Ethernet/IPv4/TCP|UDP) is
//   analyzed instead.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "net/pcap.h"
#include "net/trace_gen.h"
#include "util/table.h"

using namespace iustitia;

int main(int argc, char** argv) {
  std::string path;
  bool temporary = false;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Generate a capture to analyze.
    path = "iustitia_example.pcap";
    temporary = true;
    net::TraceOptions trace_options;
    trace_options.header_source = appproto::standard_header_source();
    trace_options.target_packets = 20000;
    trace_options.seed = 55;
    const net::Trace trace = net::generate_trace(trace_options);
    std::ofstream out(path, std::ios::binary);
    net::PcapWriter writer(out);
    for (const net::Packet& packet : trace.packets) writer.write(packet);
    std::cout << "wrote " << writer.packets_written() << " packets to "
              << path << '\n';
  }

  // Train the classifier.
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 60;
  corpus_options.seed = 56;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions trainer;
  trainer.backend = core::Backend::kSvm;
  trainer.widths = entropy::svm_preferred_widths();
  trainer.method = core::TrainingMethod::kFirstBytes;
  trainer.buffer_size = 32;
  trainer.svm.gamma = 50.0;
  trainer.svm.c = 1000.0;
  core::FlowNatureModel model = core::train_model(corpus, trainer);

  // Replay the capture through the online engine.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  core::EngineOptions engine_options;
  engine_options.buffer_size = 32;
  core::Iustitia engine(std::move(model), engine_options);
  net::PcapReader reader(in);
  while (auto packet = reader.next()) {
    engine.on_packet(*packet);
  }
  engine.flush_all();

  std::cout << "read " << reader.packets_read() << " packets; classified "
            << engine.stats().flows_classified << " flows\n\n";

  // Per-nature flow summary.
  std::size_t per_class[3] = {};
  double tau_sum = 0.0;
  for (const core::FlowDelayRecord& record : engine.delays()) {
    ++per_class[static_cast<int>(record.label)];
    tau_sum += record.tau_b;
  }
  util::Table table({"nature", "flows", "share"});
  static constexpr const char* kNames[3] = {"text", "binary", "encrypted"};
  for (int c = 0; c < 3; ++c) {
    table.add_row(
        {kNames[c], std::to_string(per_class[c]),
         util::fmt_percent(static_cast<double>(per_class[c]) /
                           static_cast<double>(
                               engine.stats().flows_classified))});
  }
  table.render(std::cout);
  std::cout << "\nmean buffering delay tau_b = "
            << util::fmt_seconds(
                   tau_sum /
                   static_cast<double>(engine.stats().flows_classified))
            << '\n';

  if (temporary) std::remove(path.c_str());
  return 0;
}
