#include "util/random.h"

#include <cmath>
#include <numbers>

namespace iustitia::util {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (bound == 0) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi == lo yields range 1
  return lo + static_cast<std::int64_t>(range == 0 ? next_u64()
                                                   : next_below(range));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() noexcept {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double shape, double scale) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale / std::pow(u, 1.0 / shape);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

void Rng::fill_bytes(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t r = next_u64();
    for (int b = 0; b < 8; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(r >> (8 * b));
    }
    i += 8;
  }
  if (i < out.size()) {
    std::uint64_t r = next_u64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(r);
      r >>= 8;
    }
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  shuffle(out);
  return out;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace iustitia::util
