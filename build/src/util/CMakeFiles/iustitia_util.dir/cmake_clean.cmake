file(REMOVE_RECURSE
  "CMakeFiles/iustitia_util.dir/logging.cc.o"
  "CMakeFiles/iustitia_util.dir/logging.cc.o.d"
  "CMakeFiles/iustitia_util.dir/random.cc.o"
  "CMakeFiles/iustitia_util.dir/random.cc.o.d"
  "CMakeFiles/iustitia_util.dir/sha1.cc.o"
  "CMakeFiles/iustitia_util.dir/sha1.cc.o.d"
  "CMakeFiles/iustitia_util.dir/stats.cc.o"
  "CMakeFiles/iustitia_util.dir/stats.cc.o.d"
  "CMakeFiles/iustitia_util.dir/table.cc.o"
  "CMakeFiles/iustitia_util.dir/table.cc.o.d"
  "libiustitia_util.a"
  "libiustitia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
