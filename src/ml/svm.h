// Support Vector Machine backend: binary soft-margin SVM trained with
// Platt's SMO algorithm, RBF/linear kernels, and DAGSVM multi-class
// composition (Platt, Cristianini & Shawe-Taylor, NIPS 2000) — the exact
// configuration the paper evaluates (RBF kernel, gamma = 50, C = 1000,
// DAGSVM for the three-class problem).
#ifndef IUSTITIA_ML_SVM_H_
#define IUSTITIA_ML_SVM_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "util/random.h"

namespace iustitia::ml {

enum class KernelType { kLinear, kRbf, kPolynomial };

// Kernel and SMO solver knobs.
struct SvmParams {
  KernelType kernel = KernelType::kRbf;
  double gamma = 50.0;    // RBF width: K(x,z) = exp(-gamma * ||x-z||^2);
                          // also scales the polynomial inner product
  double coef0 = 1.0;     // polynomial offset: K = (gamma x.z + coef0)^deg
  int degree = 3;         // polynomial degree
  double c = 1000.0;      // soft-margin penalty
  double tolerance = 1e-3;  // KKT violation tolerance
  double eps = 1e-8;        // minimum alpha step
  std::size_t max_iterations = 200000;  // SMO step budget (safety valve)
  std::uint64_t seed = 42;  // order randomization for the SMO outer loop
};

// Kernel evaluation.
double kernel_value(const SvmParams& params, std::span<const double> a,
                    std::span<const double> b) noexcept;

// Back-compat overload for linear/RBF call sites.
double kernel_value(KernelType kernel, double gamma,
                    std::span<const double> a,
                    std::span<const double> b) noexcept;

// Binary soft-margin SVM with labels {-1, +1}.
class BinarySvm {
 public:
  BinarySvm() = default;

  // Trains on rows `x` with labels `y` (each +1 or -1).  Throws
  // std::invalid_argument on size mismatch or empty input.
  void train(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, const SvmParams& params);

  // Signed decision value sum_i alpha_i y_i K(sv_i, z) + b.
  double decision(std::span<const double> features) const;

  // Sign of the decision value as a {-1, +1} label (0.0 maps to +1).
  int predict(std::span<const double> features) const;

  bool trained() const noexcept { return !support_vectors_.empty(); }
  std::size_t support_vector_count() const noexcept {
    return support_vectors_.size();
  }
  double bias() const noexcept { return bias_; }
  const SvmParams& params() const noexcept { return params_; }

  // Serialization access.
  const std::vector<std::vector<double>>& support_vectors() const noexcept {
    return support_vectors_;
  }
  const std::vector<double>& coefficients() const noexcept {
    return coefficients_;  // alpha_i * y_i per support vector
  }
  void restore(std::vector<std::vector<double>> support_vectors,
               std::vector<double> coefficients, double bias,
               SvmParams params);

  // Rough model footprint: doubles stored for SVs + coefficients.
  std::size_t space_bytes() const noexcept;

 private:
  SvmParams params_;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> coefficients_;
  double bias_ = 0.0;
};

// DAGSVM multi-class classifier over K(K-1)/2 pairwise binary SVMs.
//
// Prediction walks the decision DAG: start with all classes as candidates
// and repeatedly evaluate the (first, last) pairwise machine, eliminating
// the losing class, until one candidate remains — K-1 kernel evalu, the
// property that makes DAGSVM "the fastest among multi-class voting
// methods" cited by the paper.
class DagSvm final : public Classifier {
 public:
  DagSvm() = default;

  // Trains all pairwise machines.  Throws on datasets with < 2 classes.
  void train(const Dataset& data, const SvmParams& params);

  int predict(std::span<const double> features) const override;
  int num_classes() const override { return num_classes_; }

  bool trained() const noexcept { return !machines_.empty(); }

  // Pairwise machine for classes (i, j), i < j; +1 decision means class i.
  const BinarySvm& machine(int i, int j) const;

  // Total support vectors across machines (with multiplicity).
  std::size_t support_vector_count() const noexcept;
  std::size_t space_bytes() const noexcept;

  // Serialization access.
  void restore(int num_classes, std::vector<BinarySvm> machines);
  const std::vector<BinarySvm>& machines() const noexcept { return machines_; }

 private:
  std::size_t machine_index(int i, int j) const;

  int num_classes_ = 0;
  std::vector<BinarySvm> machines_;  // (0,1), (0,2), ..., (K-2,K-1)
};

// One-vs-one max-wins voting multi-class SVM.
//
// The baseline DAGSVM is compared against in the paper's citation (Hsu &
// Lin 2002): max-wins evaluates ALL K(K-1)/2 pairwise machines and votes,
// whereas the DAG evaluates only K-1 — same training cost, higher
// prediction cost, near-identical accuracy.  Included so the "DAGSVM is
// the fastest multi-class method" claim can be benchmarked directly.
class MaxWinsSvm final : public Classifier {
 public:
  MaxWinsSvm() = default;

  void train(const Dataset& data, const SvmParams& params);

  // Builds a voting classifier over an already trained DAGSVM's machines
  // (the pairwise machines are identical; only prediction differs).
  static MaxWinsSvm from_dag(const DagSvm& dag);

  int predict(std::span<const double> features) const override;
  int num_classes() const override { return num_classes_; }

  bool trained() const noexcept { return !machines_.empty(); }

 private:
  std::size_t machine_index(int i, int j) const;

  int num_classes_ = 0;
  std::vector<BinarySvm> machines_;
};

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_SVM_H_
