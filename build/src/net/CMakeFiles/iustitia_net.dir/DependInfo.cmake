
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow.cc" "src/net/CMakeFiles/iustitia_net.dir/flow.cc.o" "gcc" "src/net/CMakeFiles/iustitia_net.dir/flow.cc.o.d"
  "/root/repo/src/net/flow_table.cc" "src/net/CMakeFiles/iustitia_net.dir/flow_table.cc.o" "gcc" "src/net/CMakeFiles/iustitia_net.dir/flow_table.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/net/CMakeFiles/iustitia_net.dir/pcap.cc.o" "gcc" "src/net/CMakeFiles/iustitia_net.dir/pcap.cc.o.d"
  "/root/repo/src/net/trace_gen.cc" "src/net/CMakeFiles/iustitia_net.dir/trace_gen.cc.o" "gcc" "src/net/CMakeFiles/iustitia_net.dir/trace_gen.cc.o.d"
  "/root/repo/src/net/tunnel.cc" "src/net/CMakeFiles/iustitia_net.dir/tunnel.cc.o" "gcc" "src/net/CMakeFiles/iustitia_net.dir/tunnel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/iustitia_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/appproto/CMakeFiles/iustitia_appproto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
