#include "core/sharded_engine.h"

#include <stdexcept>

namespace iustitia::core {

ShardedIustitia::ShardedIustitia(
    const std::function<FlowNatureModel()>& model_factory,
    const EngineOptions& options, std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedIustitia: shards must be > 0");
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    EngineOptions shard_options = options;
    shard_options.seed = options.seed + i;  // independent random-skip streams
    shards_.push_back(
        std::make_unique<Iustitia>(model_factory(), shard_options));
  }
}

std::size_t ShardedIustitia::shard_of(
    const net::FlowKey& key) const noexcept {
  return net::FlowKeyHash{}(key) % shards_.size();
}

PacketAction ShardedIustitia::on_packet(const net::Packet& packet) {
  return shards_[shard_of(packet.key)]->on_packet(packet);
}

EngineStats ShardedIustitia::total_stats() const {
  EngineStats total;
  for (const auto& shard : shards_) {
    const EngineStats& s = shard->stats();
    total.packets += s.packets;
    total.data_packets += s.data_packets;
    total.flows_classified += s.flows_classified;
    total.flows_timed_out += s.flows_timed_out;
    for (std::size_t c = 0; c < total.queue_packets.size(); ++c) {
      total.queue_packets[c] += s.queue_packets[c];
    }
  }
  return total;
}

std::size_t ShardedIustitia::total_cdb_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->cdb().size();
  return total;
}

std::size_t ShardedIustitia::total_flows_classified() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->stats().flows_classified;
  }
  return total;
}

std::size_t ShardedIustitia::flush_all() {
  std::size_t flushed = 0;
  for (auto& shard : shards_) flushed += shard->flush_all();
  return flushed;
}

}  // namespace iustitia::core
