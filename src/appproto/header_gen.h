// Application-layer header generation (paper Section 4.3).
//
// Many flows open with a textual protocol preamble (an HTTP response before
// a JPEG, an SMTP dialogue before a MIME part, ...), which would bias a
// prefix-based classifier.  These generators synthesize realistic headers
// for the four protocols the paper names (HTTP, SMTP, IMAP, POP) so the
// stripper and the H_b' training method can be exercised end to end.
#ifndef IUSTITIA_APPPROTO_HEADER_GEN_H_
#define IUSTITIA_APPPROTO_HEADER_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::appproto {

enum class AppProtocol { kNone, kHttp, kSmtp, kPop3, kImap };

const char* protocol_name(AppProtocol p) noexcept;

// HTTP/1.1 response header (status line + typical fields + CRLF CRLF).
std::vector<std::uint8_t> generate_http_response_header(
    util::Rng& rng, std::size_t content_length);

// HTTP/1.1 request header (GET/POST + host + typical fields).
std::vector<std::uint8_t> generate_http_request_header(util::Rng& rng);

// Header for the given protocol (kNone yields an empty vector).
std::vector<std::uint8_t> generate_header(AppProtocol protocol, util::Rng& rng,
                                          std::size_t content_length = 0);

}  // namespace iustitia::appproto

#endif  // IUSTITIA_APPPROTO_HEADER_GEN_H_
