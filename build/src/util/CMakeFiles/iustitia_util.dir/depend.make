# Empty dependencies file for iustitia_util.
# This may be replaced when dependencies are built.
