#include "appproto/trace_headers.h"

#include "appproto/header_gen.h"

namespace iustitia::appproto {

namespace {

AppProtocol sample_app_protocol(util::Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.70) return AppProtocol::kHttp;
  if (roll < 0.85) return AppProtocol::kSmtp;
  if (roll < 0.93) return AppProtocol::kPop3;
  return AppProtocol::kImap;
}

}  // namespace

net::AppHeaderSource standard_header_source() {
  return [](util::Rng& rng, std::size_t content_length) {
    const AppProtocol protocol = sample_app_protocol(rng);
    net::AppHeader header;
    header.protocol_id = static_cast<int>(protocol);
    header.bytes = generate_header(protocol, rng, content_length);
    return header;
  };
}

}  // namespace iustitia::appproto
