// Kullback-Leibler and Jensen-Shannon divergence over gram distributions
// (paper Section 3.2, Formula (2)).
//
// The paper validates Hypothesis 2 ("the randomness of the beginning of a
// file represents the randomness of the whole file") by measuring the JSD
// between the gram distribution of the first b bytes and that of the whole
// file.  JSD here uses log base 2, so it is bounded in [0, 1] and equals 0
// iff the distributions are identical.
#ifndef IUSTITIA_ENTROPY_DIVERGENCE_H_
#define IUSTITIA_ENTROPY_DIVERGENCE_H_

#include <cstdint>
#include <span>
#include <unordered_map>

#include "entropy/gram_counter.h"

namespace iustitia::entropy {

// Sparse probability distribution over gram keys.
using GramDistribution = std::unordered_map<GramKey, double, GramKeyHash>;

// Normalizes a counter into a probability distribution (empty if no grams).
GramDistribution to_distribution(const GramCounter& counter);

// Distribution of the k-grams of `data`.
GramDistribution gram_distribution(std::span<const std::uint8_t> data,
                                   int width);

// KL divergence KLD(P||Q) in bits.  Terms where p_i > 0 but q_i == 0 would
// be infinite; this is never the case for the JSD internals (Q is a strict
// mixture), and the plain KLD returns +infinity in that case.
double kl_divergence(const GramDistribution& p, const GramDistribution& q);

// Jensen-Shannon divergence in bits, computed stably as
//   JSD(P||Q) = H(M) - (H(P)+H(Q))/2,   M = (P+Q)/2.
// Bounded [0, 1]; symmetric; 0 iff P == Q.
double js_divergence(const GramDistribution& p, const GramDistribution& q);

// Shannon entropy of a distribution in bits.
double distribution_entropy_bits(const GramDistribution& p);

}  // namespace iustitia::entropy

#endif  // IUSTITIA_ENTROPY_DIVERGENCE_H_
