#include "core/output_queues.h"

namespace iustitia::core {

bool OutputQueues::enqueue(datagen::FileClass label, net::Packet packet) {
  const auto index = static_cast<std::size_t>(label);
  if (capacity_ != 0 && queues_[index].size() >= capacity_) {
    ++dropped_[index];
    return false;
  }
  queues_[index].push_back(QueuedPacket{std::move(packet), label});
  ++enqueued_[index];
  return true;
}

std::optional<QueuedPacket> OutputQueues::dequeue(datagen::FileClass label) {
  const auto index = static_cast<std::size_t>(label);
  if (queues_[index].empty()) return std::nullopt;
  QueuedPacket out = std::move(queues_[index].front());
  queues_[index].pop_front();
  return out;
}

std::optional<QueuedPacket> OutputQueues::dequeue_priority(
    std::span<const datagen::FileClass> priority_order) {
  for (const datagen::FileClass label : priority_order) {
    auto packet = dequeue(label);
    if (packet.has_value()) return packet;
  }
  return std::nullopt;
}

std::size_t OutputQueues::depth(datagen::FileClass label) const noexcept {
  return queues_[static_cast<std::size_t>(label)].size();
}

std::uint64_t OutputQueues::enqueued(datagen::FileClass label) const noexcept {
  return enqueued_[static_cast<std::size_t>(label)];
}

std::uint64_t OutputQueues::dropped(datagen::FileClass label) const noexcept {
  return dropped_[static_cast<std::size_t>(label)];
}

}  // namespace iustitia::core
