#include "entropy/gram_counter.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace iustitia::entropy {

namespace {
// Maximum k-gram width supported (the paper uses 1..10).
constexpr int kMaxGramWidth = 16;
}  // namespace

GramKey pack_gram(const std::uint8_t* data, int width) noexcept {
  GramKey key = 0;
  for (int i = 0; i < width; ++i) {
    key = (key << 8) | data[i];
  }
  return key;
}

GramCounter::GramCounter(int width) : width_(width) {
  if (width < 1 || width > kMaxGramWidth) {
    throw std::invalid_argument("GramCounter width must be in [1, 16]");
  }
  if (width_ == 1) {
    byte_counts_.assign(256, 0);
  }
  tail_.reserve(static_cast<std::size_t>(width_ - 1));
}

void GramCounter::reset() noexcept {
  total_grams_ = 0;
  total_bytes_ = 0;
  sum_count_log_count_ = 0.0;
  tail_.clear();
  if (width_ == 1) {
    byte_counts_.assign(256, 0);
  } else {
    counts_.clear();
  }
}

void GramCounter::bump_sum(std::uint64_t old_count) noexcept {
  // S gains (c+1)ln(c+1) - c*ln(c) when a gram's count goes c -> c+1.
  const double c = static_cast<double>(old_count);
  const double c1 = c + 1.0;
  // NOLINTNEXTLINE(log2-domain): c1 = c + 1 >= 1 by construction.
  sum_count_log_count_ += c1 * std::log(c1);
  if (old_count > 0) sum_count_log_count_ -= c * std::log(c);
}

void GramCounter::add(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  if (width_ == 1) {
    for (const std::uint8_t b : data) {
      bump_sum(byte_counts_[b]);
      ++byte_counts_[b];
    }
    total_grams_ += data.size();
    return;
  }

  // Stitch the retained tail with the new data so grams crossing the call
  // boundary are counted.  The stitched region is at most 2*(width-1)
  // bytes, so a fixed stack buffer holds it for every legal width.
  const auto w = static_cast<std::size_t>(width_);
  if (!tail_.empty()) {
    std::uint8_t joint[2 * (kMaxGramWidth - 1)];
    std::size_t joint_size = tail_.size();
    std::memcpy(joint, tail_.data(), joint_size);
    const std::size_t take = data.size() < w - 1 ? data.size() : w - 1;
    if (take > 0) {
      std::memcpy(joint + joint_size, data.data(), take);
      joint_size += take;
    }
    if (joint_size >= w) {
      for (std::size_t i = 0; i + w <= joint_size; ++i) {
        std::uint64_t& count = counts_[pack_gram(joint + i, width_)];
        bump_sum(count);
        ++count;
        ++total_grams_;
      }
    }
  }
  // Grams fully inside `data`.
  if (data.size() >= w) {
    for (std::size_t i = 0; i + w <= data.size(); ++i) {
      std::uint64_t& count = counts_[pack_gram(data.data() + i, width_)];
      bump_sum(count);
      ++count;
      ++total_grams_;
    }
  }
  // Update the tail: last (width-1) bytes of the logical stream.  Trim the
  // old bytes *before* appending so the vector never outgrows its reserved
  // (width-1)-byte capacity.
  if (data.size() >= w - 1) {
    tail_.assign(data.end() - static_cast<std::ptrdiff_t>(w - 1), data.end());
  } else {
    const std::size_t keep = tail_.size() + data.size() > w - 1
                                 ? w - 1 - data.size()
                                 : tail_.size();
    tail_.erase(tail_.begin(),
                tail_.begin() +
                    static_cast<std::ptrdiff_t>(tail_.size() - keep));
    tail_.insert(tail_.end(), data.begin(), data.end());
  }
}

std::size_t GramCounter::distinct() const {
  if (width_ == 1) {
    std::size_t n = 0;
    for (const std::uint64_t c : byte_counts_) n += (c != 0);
    return n;
  }
  return counts_.size();
}

std::uint64_t GramCounter::count(GramKey key) const {
  if (width_ == 1) {
    return byte_counts_[static_cast<std::size_t>(key & 0xFF)];
  }
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double GramCounter::sum_count_log_count_recomputed() const {
  double sum = 0.0;
  if (width_ == 1) {
    for (const std::uint64_t c : byte_counts_) {
      if (c > 1) sum += static_cast<double>(c) * std::log(static_cast<double>(c));
    }
    return sum;
  }
  for (const auto& [key, c] : counts_) {
    if (c > 1) sum += static_cast<double>(c) * std::log(static_cast<double>(c));
  }
  return sum;
}

void GramCounter::for_each(
    const std::function<void(GramKey, std::uint64_t)>& fn) const {
  if (width_ == 1) {
    for (std::size_t b = 0; b < 256; ++b) {
      if (byte_counts_[b] != 0) fn(static_cast<GramKey>(b), byte_counts_[b]);
    }
    return;
  }
  for (const auto& [key, c] : counts_) fn(key, c);
}

std::size_t GramCounter::space_bytes() const noexcept {
  if (width_ == 1) {
    // A production implementation would use one byte-indexed table of
    // 32-bit counters; charge that, matching the paper's space accounting.
    return 256 * sizeof(std::uint32_t);
  }
  // Hash-map entry: key (16B) + count (8B) + bucket overhead (~8B).
  return counts_.size() * (sizeof(GramKey) + sizeof(std::uint64_t) + 8);
}

}  // namespace iustitia::entropy
