// Reproduces Figure 10: (a) the average number of packets c needed to fill
// the classification buffer and (b) the total classifier delay tau over
// time, for buffer sizes b in {32, 1024, 1500, 2000} (the latter two model
// T + b' with the header threshold included, as in the paper).
//
// Paper shape: c ~= 1 for b=32 (one packet usually fills 32 bytes) and
// 3-5 packets for the larger buffers; tau is dominated by the buffer fill
// time tau_b — tens of ms for b=32 and around a second for large buffers —
// while tau_hash and tau_CDBsearch are microseconds.
#include "appproto/trace_headers.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "net/trace_gen.h"
#include "util/stats.h"

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

core::FlowNatureModel quick_model(std::size_t b) {
  const auto corpus = standard_corpus(40);
  core::TrainerOptions options;
  options.backend = core::Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = core::TrainingMethod::kFirstBytes;
  options.buffer_size = b;
  return core::train_model(corpus, options);
}

int run() {
  banner("Fig. 10: packets-to-fill c and total classifier delay tau",
         "c ~1 for b=32, 3-5 for b>=1024; tau dominated by buffer fill");

  const std::size_t packets = env_size("IUSTITIA_TRACE_PACKETS", 80000);
  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = packets;
  trace_options.duration_seconds = 16.0;
  trace_options.seed = 0xF10;
  const net::Trace trace = net::generate_trace(trace_options);

  const std::size_t buffer_sizes[] = {32, 1024, 1500, 2000};
  constexpr int kSamplePoints = 8;

  // Per buffer size: bucketed means over time for c and tau.
  util::Table c_table({"time (s)", "c (b=32)", "c (b=1024)", "c (b=1500)",
                       "c (b=2000)"});
  util::Table tau_table({"time (s)", "tau (b=32)", "tau (b=1024)",
                         "tau (b=1500)", "tau (b=2000)"});

  std::vector<std::vector<util::RunningStats>> c_stats(
      std::size(buffer_sizes), std::vector<util::RunningStats>(kSamplePoints));
  std::vector<std::vector<util::RunningStats>> tau_stats = c_stats;
  util::RunningStats overall_c[4], overall_tau[4], micro_costs[4];

  for (std::size_t bi = 0; bi < std::size(buffer_sizes); ++bi) {
    core::EngineOptions options;
    options.buffer_size = buffer_sizes[bi];
    options.buffer_timeout_seconds = 8.0;
    core::Iustitia engine(quick_model(buffer_sizes[bi]), options);
    for (const net::Packet& p : trace.packets) engine.on_packet(p);
    engine.flush_all();

    for (const core::FlowDelayRecord& record : engine.delays()) {
      int bucket = static_cast<int>(record.classified_at /
                                    trace.duration_seconds * kSamplePoints);
      bucket = std::clamp(bucket, 0, kSamplePoints - 1);
      // Total delay tau = tau_hash + tau_CDBsearch + tau_b; the measured
      // hash/CDB micros are negligible next to tau_b, as in the paper.
      const double tau = record.tau_b + (record.hash_micros +
                                         record.cdb_micros +
                                         record.extract_micros) *
                                            1e-6;
      c_stats[bi][static_cast<std::size_t>(bucket)].add(
          static_cast<double>(record.packets_to_fill));
      tau_stats[bi][static_cast<std::size_t>(bucket)].add(tau);
      overall_c[bi].add(static_cast<double>(record.packets_to_fill));
      overall_tau[bi].add(tau);
      micro_costs[bi].add(record.hash_micros + record.cdb_micros +
                          record.extract_micros);
    }
  }

  for (int bucket = 0; bucket < kSamplePoints; ++bucket) {
    const double t =
        (bucket + 0.5) * trace.duration_seconds / kSamplePoints;
    std::vector<std::string> c_row{util::fmt(t, 1)};
    std::vector<std::string> tau_row{util::fmt(t, 1)};
    for (std::size_t bi = 0; bi < std::size(buffer_sizes); ++bi) {
      c_row.push_back(util::fmt(c_stats[bi][static_cast<std::size_t>(bucket)]
                                    .mean(),
                                2));
      tau_row.push_back(util::fmt_seconds(
          tau_stats[bi][static_cast<std::size_t>(bucket)].mean()));
    }
    c_table.add_row(std::move(c_row));
    tau_table.add_row(std::move(tau_row));
  }

  std::cout << "-- Fig. 10(a): average packets to fill the buffer --\n";
  c_table.render(std::cout);
  std::cout << "\n-- Fig. 10(b): average total classifier delay --\n";
  tau_table.render(std::cout);

  std::cout << "\noverall means:\n";
  util::Table summary({"b", "mean c", "mean tau", "mean compute cost "
                                                  "(hash+CDB+extract)"});
  for (std::size_t bi = 0; bi < std::size(buffer_sizes); ++bi) {
    summary.add_row({std::to_string(buffer_sizes[bi]),
                     util::fmt(overall_c[bi].mean(), 2),
                     util::fmt_seconds(overall_tau[bi].mean()),
                     util::fmt(micro_costs[bi].mean(), 1) + " us"});
  }
  summary.render(std::cout);

  std::cout << "\npaper:    c ~= 1 for b=32; 3-5 for larger buffers; tau "
               "dominated by tau_b\n";
  std::cout << "measured: c(32) = " << util::fmt(overall_c[0].mean(), 2)
            << ", c(2000) = " << util::fmt(overall_c[3].mean(), 2)
            << "; compute cost is microseconds while tau is "
            << util::fmt_seconds(overall_tau[3].mean()) << '\n';
  std::cout << "shape check: c(32) < 1.5 and c grows with b: "
            << (overall_c[0].mean() < 1.5 &&
                        overall_c[3].mean() > overall_c[0].mean()
                    ? "YES"
                    : "NO")
            << '\n';
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
