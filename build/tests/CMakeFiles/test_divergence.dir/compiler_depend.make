# Empty compiler generated dependencies file for test_divergence.
# This may be replaced when dependencies are built.
