file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_epsilon_delta.dir/bench_fig7_epsilon_delta.cc.o"
  "CMakeFiles/bench_fig7_epsilon_delta.dir/bench_fig7_epsilon_delta.cc.o.d"
  "bench_fig7_epsilon_delta"
  "bench_fig7_epsilon_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_epsilon_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
