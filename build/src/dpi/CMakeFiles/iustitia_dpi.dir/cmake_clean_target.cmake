file(REMOVE_RECURSE
  "libiustitia_dpi.a"
)
