// Live metrics for the online serving runtime.
//
// Every mutator is a relaxed atomic add on the hot path — no locks, no
// fences beyond the counter itself, safe to call from the dispatcher and
// every shard worker concurrently.  snapshot() reads the same atomics
// from any thread and returns a plain-value MetricsSnapshot that renders
// as a human text report or machine-readable JSON.  Relaxed ordering
// means a snapshot taken mid-run can be momentarily inconsistent across
// counters (e.g. a push counted whose pop is in flight); totals are exact
// once the runtime has drained.
//
// Inventory (see DESIGN.md §10): packets in from the source; per-ring
// pushed/popped/dropped and ring high-water mark; per-ring dispatch
// flush count and a fixed-bucket histogram of burst sizes (how many
// packets each ring operation actually moved — the observable batching
// efficiency of the burst protocol); flows classified per nature; a
// fixed-bucket histogram of per-packet engine latency; plus the
// per-nature OutputQueues counters folded in at snapshot time.
#ifndef IUSTITIA_RUNTIME_METRICS_H_
#define IUSTITIA_RUNTIME_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/output_queues.h"
#include "runtime/spsc_ring.h"

namespace iustitia::runtime {

// Fixed-bucket latency histogram: bucket i counts samples in
// [2^(i-1), 2^i) microseconds (bucket 0 is < 1us, the last bucket is
// open-ended).  Fixed buckets keep record() allocation-free and
// wait-free, which is what lets every worker call it per packet.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketCount = 20;

  void record(double micros) noexcept;

  struct Snapshot {
    std::array<std::uint64_t, kBucketCount> counts{};
    std::uint64_t total = 0;
    double sum_micros = 0.0;

    double mean_micros() const noexcept;
    // Upper bucket edge containing quantile q in [0, 1] (0 with no data).
    double quantile_upper_micros(double q) const noexcept;
  };

  Snapshot snapshot() const;

  // Inclusive lower edge of bucket i in microseconds.
  static double bucket_floor_micros(std::size_t i) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};  // analyze: atomic(relaxed-counter)
  std::atomic<std::uint64_t> sum_nanos_{0};  // analyze: atomic(relaxed-counter)
};

// Burst-size histogram geometry, shared by the registry and its
// snapshot: bucket i counts bursts of [2^i, 2^(i+1)) packets (bucket 0
// is exactly 1, the last bucket is open-ended), so 13 buckets cover
// every burst a 4096-slot staging buffer can produce.
inline constexpr std::size_t kBurstBucketCount = 13;

// Shed-stage count for the overload ladder (runtime/overload.h):
// normal, cap-buffer, sample-admission, drop.  Lives here so the
// counter arrays and the policy agree without metrics depending on the
// policy header.
inline constexpr std::size_t kShedStageCount = 4;

// Plain-value copy of every runtime counter, safe to pass around after
// the registry (or the whole runtime) is gone.
struct MetricsSnapshot {
  struct Ring {
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t dropped = 0;
    std::size_t high_water = 0;
    // Staging-buffer flushes the dispatcher performed for this ring and
    // the sizes of the bursts its push operations actually moved.
    std::uint64_t flushes = 0;
    std::array<std::uint64_t, kBurstBucketCount> burst_counts{};

    // Mean packets per successful burst push (0 with no burst pushes).
    double mean_burst() const noexcept;
  };

  std::size_t shards = 0;
  // Seconds since the MetricsRegistry was constructed (monotonic clock),
  // i.e. runtime age — what an operator reads off /metrics as uptime.
  double uptime_seconds = 0.0;
  // Operator-facing model identity: the version string of the currently
  // installed model and how many hot-swaps have been published since
  // start ("unversioned"/0 for a runtime without a registry).
  std::string model_version = "unversioned";
  std::uint64_t model_swaps = 0;
  std::uint64_t packets_in = 0;
  std::vector<Ring> rings;
  std::array<std::uint64_t, 3> flows_by_nature{};
  LatencyHistogram::Snapshot engine_latency;
  bool has_queue_stats = false;
  core::OutputQueueStats queue_stats;

  // Overload/resilience inventory (DESIGN.md §12).  Stage counters come
  // from the registry; overload_stage, health, and the cdb_* occupancy
  // figures are folded in by Runtime::snapshot() (defaults stand for a
  // bare registry, e.g. in unit tests).
  int overload_stage = 0;  // 0=normal .. 3=drop, current shed stage
  std::string health = "ok";  // "ok" | "degraded(<stage>)" | "unhealthy(watchdog)"
  std::array<std::uint64_t, kShedStageCount> stage_entries{};
  std::array<std::uint64_t, kShedStageCount> stage_exits{};
  std::uint64_t packets_shed = 0;             // admission-sampled away
  std::uint64_t source_transient_errors = 0;  // retried source failures
  std::uint64_t source_retries_exhausted = 0;
  std::uint64_t watchdog_stalls = 0;  // stall detections (not currently-stalled)
  std::uint64_t cdb_records = 0;      // resident records across shards
  std::uint64_t cdb_ceiling = 0;      // per-shard hard ceiling (0 = unbounded)
  std::uint64_t cdb_forced_evictions = 0;
  std::uint64_t cdb_insert_failures = 0;

  std::uint64_t total_pushed() const noexcept;
  std::uint64_t total_popped() const noexcept;
  std::uint64_t total_dropped() const noexcept;
  std::uint64_t total_flushes() const noexcept;

  // Multi-line human report (tables of the inventory above).
  std::string text_report() const;
  // Machine-readable JSON document of the same values.
  std::string json() const;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t shards);

  std::size_t shard_count() const noexcept { return shards_; }

  // Dispatcher side.
  void on_source_packet() noexcept;
  void on_push(std::size_t shard, std::size_t depth_after) noexcept;
  void on_drop(std::size_t shard) noexcept;

  // Dispatcher side, batched: the burst-path equivalents fold a whole
  // burst into one relaxed add per counter, and on_push_burst records
  // the burst size in the per-shard histogram.  on_dispatch_flush counts
  // one staging-buffer flush (a flush may take several burst pushes when
  // the ring is nearly full).
  void on_source_packets(std::uint64_t n) noexcept;
  void on_push_burst(std::size_t shard, std::size_t n,
                     std::size_t depth_after) noexcept;
  void on_drop_burst(std::size_t shard, std::size_t n) noexcept;
  void on_dispatch_flush(std::size_t shard) noexcept;

  // Worker side.
  void on_pop(std::size_t shard) noexcept;
  void on_pop_burst(std::size_t shard, std::size_t n) noexcept;
  void on_classified(datagen::FileClass nature) noexcept;
  void record_engine_latency(double micros) noexcept;
  void on_packets_shed(std::uint64_t n) noexcept;

  // Overload/resilience side: the dispatcher-owned OverloadPolicy
  // reports stage transitions, the dispatcher reports source retry
  // outcomes, and the watchdog reports stall detections.  All relaxed
  // adds, same contract as the packet counters.
  void on_stage_entered(std::size_t stage) noexcept;
  void on_stage_exited(std::size_t stage) noexcept;
  void on_source_transient_error() noexcept;
  void on_source_retries_exhausted() noexcept;
  void on_watchdog_stall() noexcept;

  // Any thread.  Pass the runtime's OutputQueues to fold its per-nature
  // counters into the snapshot.
  MetricsSnapshot snapshot(const core::OutputQueues* queues = nullptr) const;

 private:
  // Each ring's counters get their own cache line so shard workers never
  // write-share a line with a neighbour.
  struct alignas(kCacheLineBytes) RingCounters {
    std::atomic<std::uint64_t> pushed{0};      // analyze: atomic(relaxed-counter)
    std::atomic<std::uint64_t> popped{0};      // analyze: atomic(relaxed-counter)
    std::atomic<std::uint64_t> dropped{0};     // analyze: atomic(relaxed-counter)
    std::atomic<std::size_t> high_water{0};    // analyze: atomic(relaxed-counter)
    std::atomic<std::uint64_t> flushes{0};     // analyze: atomic(relaxed-counter)
    std::array<std::atomic<std::uint64_t>, kBurstBucketCount> bursts{};  // analyze: atomic(relaxed-counter)
  };

  const std::size_t shards_;
  // Construction instant; snapshot() derives uptime_seconds from it.
  // Never written after the ctor, so reads need no synchronization.
  const std::chrono::steady_clock::time_point created_;
  std::unique_ptr<RingCounters[]> rings_;
  std::atomic<std::uint64_t> packets_in_{0};  // analyze: atomic(relaxed-counter)
  std::array<std::atomic<std::uint64_t>, 3> flows_by_nature_{};  // analyze: atomic(relaxed-counter)
  LatencyHistogram engine_latency_;
  std::array<std::atomic<std::uint64_t>, kShedStageCount> stage_entries_{};  // analyze: atomic(relaxed-counter)
  std::array<std::atomic<std::uint64_t>, kShedStageCount> stage_exits_{};  // analyze: atomic(relaxed-counter)
  std::atomic<std::uint64_t> packets_shed_{0};  // analyze: atomic(relaxed-counter)
  std::atomic<std::uint64_t> source_transient_errors_{0};  // analyze: atomic(relaxed-counter)
  std::atomic<std::uint64_t> source_retries_exhausted_{0};  // analyze: atomic(relaxed-counter)
  std::atomic<std::uint64_t> watchdog_stalls_{0};  // analyze: atomic(relaxed-counter)
};

}  // namespace iustitia::runtime

#endif  // IUSTITIA_RUNTIME_METRICS_H_
