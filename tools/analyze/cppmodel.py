"""Structural C++ model built on the token stream.

The analyzer does not parse C++ fully; each pass needs only a slice of
structure, recovered here by walking the token stream with brace/paren
depth tracking:

  - includes (project vs system) with line numbers,
  - namespace / class / enum / function scope classification per brace,
  - enum definitions with their enumerator lists,
  - classes with their mutex members, GUARDED_BY fields, and the methods
    annotated REQUIRES(...) / NO_THREAD_SAFETY_ANALYSIS,
  - plain data members with their declared type tokens (fields),
  - namespace-scope variable definitions with their type tokens (globals),
  - out-of-line method definitions (Class::method) with body token spans,
  - the namespace-scope names a header exports (functions, types, enums,
    enumerators, aliases, constexpr constants, macros),
  - `// analyze: kind(value)` expectation annotations by line.

Heuristics err toward under-reporting: a construct the model cannot
classify produces no findings rather than noise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from tokenizer import (CHAR, COMMENT, IDENT, NUMBER, PP, PUNCT, STRING,
                       Token, code_tokens, tokenize)

_INCLUDE_RE = re.compile(r'#\s*include\s*(<[^>]+>|"[^"]+")')
_DEFINE_RE = re.compile(r"#\s*define\s+([A-Za-z_]\w*)")
_WORD_RE = re.compile(r"[A-Za-z_]\w*")

_KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "consteval", "constexpr", "constinit", "continue",
    "co_await", "co_return", "co_yield", "decltype", "default", "delete",
    "do", "double", "else", "enum", "explicit", "export", "extern", "false",
    "final", "float", "for", "friend", "goto", "if", "inline", "int", "long",
    "mutable", "namespace", "new", "noexcept", "nullptr", "operator",
    "override", "private", "protected", "public", "register", "requires",
    "return", "short", "signed", "sizeof", "static", "static_assert",
    "static_cast", "struct", "switch", "template", "this", "throw", "true",
    "try", "typedef", "typeid", "typename", "union", "unsigned", "using",
    "virtual", "void", "volatile", "while",
}

GUARDED_BY_MACROS = ("IUSTITIA_GUARDED_BY", "GUARDED_BY",
                     "IUSTITIA_PT_GUARDED_BY", "PT_GUARDED_BY")
REQUIRES_MACROS = ("IUSTITIA_REQUIRES", "EXCLUSIVE_LOCKS_REQUIRED",
                   "REQUIRES")
NO_ANALYSIS_MACROS = ("IUSTITIA_NO_THREAD_SAFETY_ANALYSIS",
                      "NO_THREAD_SAFETY_ANALYSIS")
MUTEX_TYPES = ("Mutex", "mutex")
LOCK_TYPES = ("MutexLock", "lock_guard", "scoped_lock", "unique_lock")


@dataclass
class Include:
    target: str        # as written, without <> or ""
    line: int
    is_project: bool   # "..." include


@dataclass
class EnumDef:
    name: str
    line: int
    enumerators: list[str]
    end_line: int = 0


@dataclass
class ClassDef:
    name: str
    line: int
    end_line: int = 0
    mutexes: set[str] = field(default_factory=set)
    guarded_fields: dict[str, str] = field(default_factory=dict)  # f -> mu
    guarded_lines: dict[str, int] = field(default_factory=dict)
    requires_methods: dict[str, str] = field(default_factory=dict)  # m -> mu
    no_analysis_methods: set[str] = field(default_factory=set)
    # Plain data members: name -> the declaration's type tokens (everything
    # left of the member name after macro annotations are stripped).
    fields: dict[str, list[Token]] = field(default_factory=dict)
    field_lines: dict[str, int] = field(default_factory=dict)


@dataclass
class MethodDef:
    cls: str           # "" for free functions
    name: str
    line: int
    body: list[Token]  # code tokens of the body, braces included
    no_analysis: bool = False
    is_special: bool = False  # constructor or destructor
    is_noexcept: bool = False  # declared noexcept / noexcept(...)


@dataclass
class FileModel:
    path: str
    tokens: list[Token]
    code: list[Token]
    includes: list[Include]
    macros: dict[str, int]
    enums: list[EnumDef]
    classes: list[ClassDef]
    methods: list[MethodDef]
    exported: dict[str, int]   # name -> decl line (namespace scope)
    nested: dict[str, int]     # class-scope type names (not dead candidates)
    type_spans: dict[str, tuple[int, int]]  # type name -> def line span
    provided: dict[str, int]   # exported + nested + enumerators + macros
    # Namespace-scope variable definitions: name -> type tokens / decl line.
    globals_: dict[str, list[Token]] = field(default_factory=dict)
    global_lines: dict[str, int] = field(default_factory=dict)
    # `// analyze: kind(value)` expectations: line -> [(kind, value)].
    annotations: dict[int, list[tuple[str, str]]] = \
        field(default_factory=dict)


def _match_forward(code: list[Token], i: int, open_p: str, close_p: str) -> int:
    """Index just past the punctuator matching code[i] (which is open_p)."""
    depth = 0
    n = len(code)
    while i < n:
        t = code[i]
        if t.kind == PUNCT:
            if t.text == open_p:
                depth += 1
            elif t.text == close_p:
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _paren_group(code: list[Token], i: int) -> tuple[list[Token], int]:
    """Tokens inside (...) starting at code[i] == '(' and the end index."""
    end = _match_forward(code, i, "(", ")")
    return code[i + 1:end - 1], end


def parse_includes(tokens: list[Token]) -> list[Include]:
    out = []
    for t in tokens:
        if t.kind != PP:
            continue
        m = _INCLUDE_RE.match(t.text)
        if m:
            raw = m.group(1)
            out.append(Include(raw[1:-1], t.line, raw.startswith('"')))
    return out


def parse_macros(tokens: list[Token]) -> dict[str, int]:
    out: dict[str, int] = {}
    for t in tokens:
        if t.kind == PP and (m := _DEFINE_RE.match(t.text)):
            out.setdefault(m.group(1), t.line)
    return out


def _backtrack_method_name(code: list[Token], i: int) -> str | None:
    """Name of the method whose parameter list ends just before code[i].

    Used for annotations that follow a parameter list:
        void f(int x) IUSTITIA_REQUIRES(mu_);
    Walks back over qualifier tokens to the ')'; matches it to its '(';
    the identifier before that '(' is the method name.
    """
    j = i - 1
    qualifiers = {"const", "noexcept", "override", "final", "&", "&&"}
    while j >= 0 and (code[j].text in qualifiers or
                      code[j].text in NO_ANALYSIS_MACROS):
        j -= 1
    if j < 0 or code[j].text != ")":
        return None
    depth = 0
    while j >= 0:
        if code[j].text == ")":
            depth += 1
        elif code[j].text == "(":
            depth -= 1
            if depth == 0:
                break
        j -= 1
    if j <= 0:
        return None
    prev = code[j - 1]
    if prev.kind == IDENT and prev.text not in _KEYWORDS:
        return prev.text
    return None


_DECL_SKIP_HEADS = {
    "using", "friend", "typedef", "template", "static_assert", "public",
    "private", "protected", "struct", "class", "enum", "union", "namespace",
    "extern", "operator", "return", "if", "for", "while", "switch", "case",
}


def _parse_decl(stmt: list[Token]) -> tuple[str, list[Token], int] | None:
    """Interprets an accumulated statement as a data declaration.

    Returns (name, type tokens, line) or None when the statement is not a
    plain variable/member declaration (functions, nested types, macros,
    access specifiers, anything ambiguous — under-reporting by design).
    Annotation macros (ALL_CAPS ident + paren group) are stripped first so
    `std::thread t_ IUSTITIA_GUARDED_BY(mu_);` still yields `t_`.
    """
    if not stmt or stmt[0].text in _DECL_SKIP_HEADS:
        return None
    cleaned: list[Token] = []
    i = 0
    while i < len(stmt):
        t = stmt[i]
        is_macro = t.kind == IDENT and t.text.isupper() and len(t.text) > 1
        if (is_macro or t.text == "alignas") and i + 1 < len(stmt) and \
                stmt[i + 1].text == "(":
            i = _match_forward(stmt, i + 1, "(", ")")
            continue
        if is_macro:
            i += 1  # bare annotation macro (e.g. NO_THREAD_SAFETY_ANALYSIS)
            continue
        cleaned.append(t)
        i += 1
    # Initializer does not participate in the declarator.
    for j, t in enumerate(cleaned):
        if t.text == "=":
            cleaned = cleaned[:j]
            break
    if any(t.text == "(" for t in cleaned):
        return None  # function declaration / function-style initializer
    while len(cleaned) >= 2 and cleaned[-1].text == "]":
        k = len(cleaned) - 1
        depth = 0
        while k >= 0:
            if cleaned[k].text == "]":
                depth += 1
            elif cleaned[k].text == "[":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        cleaned = cleaned[:max(0, k)]
    if len(cleaned) < 2:
        return None
    name_tok = cleaned[-1]
    prev = cleaned[-2]
    if name_tok.kind != IDENT or name_tok.text in _KEYWORDS or \
            name_tok.text.isupper():
        return None
    if not (prev.kind == IDENT or prev.text in (">", ">>", "*", "&", "]")):
        return None
    return name_tok.text, cleaned[:-1], name_tok.line


class _ScopeWalker:
    """Single pass over the code tokens building all structural facts."""

    def __init__(self, path: str, code: list[Token]):
        self.path = path
        self.code = code
        self.enums: list[EnumDef] = []
        self.classes: list[ClassDef] = []
        self.methods: list[MethodDef] = []
        self.exported: dict[str, int] = {}
        self.nested: dict[str, int] = {}
        self.globals_: dict[str, list[Token]] = {}
        self.global_lines: dict[str, int] = {}
        # Scope stack entries: ("namespace"|"class"|"enum"|"opaque", payload)
        self.scopes: list[tuple[str, object]] = []
        # Statement accumulator for field/global declarations; only fed
        # while directly inside a class body or at namespace scope.
        self._stmt: list[Token] = []

    def _flush_stmt(self) -> None:
        decl = _parse_decl(self._stmt)
        self._stmt = []
        if decl is None:
            return
        name, type_tokens, line = decl
        cls = self.current_class()
        if cls is not None:
            cls.fields.setdefault(name, type_tokens)
            cls.field_lines.setdefault(name, line)
        elif self.at_namespace_scope() and self.scopes:
            # Repo convention: file-scope state lives inside a namespace;
            # the toplevel of a header (before any namespace) is guards
            # and includes, never variables.
            self.globals_.setdefault(name, type_tokens)
            self.global_lines.setdefault(name, line)

    def at_namespace_scope(self) -> bool:
        return all(kind == "namespace" for kind, _ in self.scopes)

    def current_class(self) -> ClassDef | None:
        for kind, payload in reversed(self.scopes):
            if kind == "class":
                return payload  # type: ignore[return-value]
            if kind != "namespace":
                return None
        return None

    # -- declaration heads -------------------------------------------------

    def _enum_head(self, i: int) -> int | None:
        """Parses `enum [class|struct] Name [: type] {` at i; returns body
        start index or None."""
        code = self.code
        j = i + 1
        if j < len(code) and code[j].text in ("class", "struct"):
            j += 1
        if j >= len(code) or code[j].kind != IDENT:
            return None
        name_tok = code[j]
        j += 1
        if j < len(code) and code[j].text == ":":
            j += 1
            while j < len(code) and code[j].text not in ("{", ";"):
                j += 1
        if j >= len(code) or code[j].text != "{":
            return None  # opaque-enum-declaration
        enum = EnumDef(name_tok.text, name_tok.line, [])
        # Collect enumerators: idents at depth 1 in positions name[, =expr].
        k, depth = j, 0
        expect_name = True
        while k < len(code):
            t = code[k]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1:
                if expect_name and t.kind == IDENT:
                    enum.enumerators.append(t.text)
                    expect_name = False
                elif t.text == ",":
                    expect_name = True
            k += 1
        enum.end_line = code[k].line if k < len(code) else name_tok.line
        self.enums.append(enum)
        if self.at_namespace_scope():
            self.exported.setdefault(enum.name, enum.line)
        elif self.current_class():
            self.nested.setdefault(enum.name, enum.line)
        return j

    def _class_head(self, i: int) -> tuple[int, ClassDef] | None:
        """Parses `class|struct [attr] Name [final] [: bases] {` at i."""
        code = self.code
        j = i + 1
        while j < len(code) and code[j].text in ("alignas",):
            j = _match_forward(code, j + 1, "(", ")")
        if j >= len(code) or code[j].kind != IDENT:
            return None
        # Annotation macros (IUSTITIA_CAPABILITY("mutex"), SCOPED_CAPABILITY)
        # between the class keyword and the class name.
        while (j + 1 < len(code) and code[j].kind == IDENT and
               code[j].text.isupper()):
            if code[j + 1].text == "(":
                j = _match_forward(code, j + 1, "(", ")")
            elif code[j + 1].kind == IDENT:
                j += 1
            else:
                break
        if j >= len(code) or code[j].kind != IDENT:
            return None
        name_tok = code[j]
        j += 1
        if j < len(code) and code[j].text == "final":
            j += 1
        if j < len(code) and code[j].text == ":":
            while j < len(code) and code[j].text not in ("{", ";"):
                j += 1
        if j >= len(code) or code[j].text != "{":
            return None  # forward declaration / variable of class type
        cls = ClassDef(name_tok.text, name_tok.line)
        self.classes.append(cls)
        if self.at_namespace_scope():
            self.exported.setdefault(cls.name, cls.line)
        else:
            self.nested.setdefault(cls.name, cls.line)
        return j, cls

    # -- class-body facts --------------------------------------------------

    def _note_class_annotations(self, cls: ClassDef, i: int) -> None:
        """Records mutex members, guarded fields, and annotated methods when
        positioned on an interesting identifier inside a class body."""
        code = self.code
        t = code[i]
        if t.text in MUTEX_TYPES and i + 1 < len(code) and \
                code[i + 1].kind == IDENT:
            cls.mutexes.add(code[i + 1].text)
        elif t.text in GUARDED_BY_MACROS and i + 1 < len(code) and \
                code[i + 1].text == "(":
            group, _ = _paren_group(code, i + 1)
            mutex = "".join(g.text for g in group)
            prev = code[i - 1] if i > 0 else None
            if prev is not None and prev.kind == IDENT:
                cls.guarded_fields[prev.text] = mutex
                cls.guarded_lines[prev.text] = prev.line
        elif t.text in REQUIRES_MACROS and i + 1 < len(code) and \
                code[i + 1].text == "(":
            group, _ = _paren_group(code, i + 1)
            mutex = "".join(g.text for g in group)
            name = _backtrack_method_name(code, i)
            if name:
                cls.requires_methods[name] = mutex
        elif t.text in NO_ANALYSIS_MACROS:
            name = _backtrack_method_name(code, i)
            if name:
                cls.no_analysis_methods.add(name)

    # -- method / function definitions -------------------------------------

    def _scan_qualifiers(self, j: int) \
            -> tuple[int, bool, bool, str | None] | None:
        """Walks qualifier/annotation tokens between a parameter list and
        the body brace (or a terminating ';').

        Returns (index of the '{' or ';', no_analysis, is_noexcept,
        requires_mutex); the caller decides whether a ';' (declaration
        only) is acceptable.  None on an unparseable qualifier run.
        """
        code = self.code
        n = len(code)
        no_analysis = False
        is_noexcept = False
        requires: str | None = None
        while j < n and code[j].text != "{" and code[j].text != ";":
            t = code[j]
            if t.text in NO_ANALYSIS_MACROS:
                no_analysis = True
                j += 1
            elif t.text == "noexcept":
                is_noexcept = True
                j += 1
                if j < n and code[j].text == "(":
                    j = _match_forward(code, j, "(", ")")
            elif t.text in REQUIRES_MACROS and j + 1 < n and \
                    code[j + 1].text == "(":
                group, j = _paren_group(code, j + 1)
                requires = "".join(g.text for g in group)
            elif t.kind == IDENT and j + 1 < n and code[j + 1].text == "(":
                j = _match_forward(code, j + 1, "(", ")")
            elif t.text == ":":
                # ctor-init list: skip to the body brace at paren depth 0.
                j += 1
                depth = 0
                while j < n:
                    if code[j].text in ("(", "{") and depth > 0:
                        depth += 1
                    elif code[j].text == "(":
                        depth += 1
                    elif code[j].text == ")":
                        depth -= 1
                    elif code[j].text == "{" and depth == 0:
                        break
                    elif code[j].text == "}" and depth > 0:
                        depth -= 1
                    elif code[j].text == ";":
                        return None
                    j += 1
            elif t.text in ("const", "override", "final", "&",
                            "&&", "->") or t.kind in (IDENT, NUMBER):
                j += 1
            else:
                return None
        if j >= n:
            return None
        return j, no_analysis, is_noexcept, requires

    def _try_method_def(self, i: int) -> int | None:
        """Parses `Class::name(params) quals [:: init] { body }` at i (the
        class identifier).  Returns the index past the body, else None."""
        code = self.code
        n = len(code)
        if not (i + 2 < n and code[i].kind == IDENT and
                code[i + 1].text == "::"):
            return None
        j = i + 2
        is_dtor = False
        if code[j].text == "~":
            is_dtor = True
            j += 1
        if j >= n or code[j].kind != IDENT:
            return None
        name_tok = code[j]
        j += 1
        # Template-argument lists and further :: qualifications are rare in
        # this codebase; bail out rather than misparse.
        if j < n and code[j].text == "::":
            return None
        if j >= n or code[j].text != "(":
            return None
        j = _match_forward(code, j, "(", ")")
        quals = self._scan_qualifiers(j)
        if quals is None:
            return None
        j, no_analysis, is_noexcept, _requires = quals
        if code[j].text != "{":
            return None
        end = _match_forward(code, j, "{", "}")
        self.methods.append(MethodDef(
            cls=code[i].text,
            name=name_tok.text,
            line=name_tok.line,
            body=code[j:end],
            no_analysis=no_analysis,
            is_special=is_dtor or name_tok.text == code[i].text,
            is_noexcept=is_noexcept))
        return end

    def _try_inline_method(self, i: int, cls: ClassDef) -> int | None:
        """Parses an in-class method definition `name(params) quals { body }`
        at i (the method name).  Returns the index past the body, else None.

        Declarations (ending ';'), `= default` / `= delete`, and calls
        inside member initializers (an '=' or '(' already accumulated in
        the statement) stay with the statement walker.
        """
        code = self.code
        n = len(code)
        t = code[i]
        if t.kind != IDENT or t.text in _KEYWORDS or t.text.isupper():
            return None
        if i + 1 >= n or code[i + 1].text != "(":
            return None
        prev = code[i - 1] if i > 0 else None
        is_special = t.text == cls.name
        if prev is not None:
            if prev.text == "~":
                is_special = True
            elif prev.text in (".", "->", "::", "=", "(", ","):
                return None
        if any(s.text in ("=", "(") for s in self._stmt):
            return None
        j = _match_forward(code, i + 1, "(", ")")
        quals = self._scan_qualifiers(j)
        if quals is None:
            return None
        j, no_analysis, is_noexcept, requires = quals
        if code[j].text != "{":
            return None  # declaration only; definition lives out of line
        # The qualifier run is consumed here, so annotations inside it
        # never reach _note_class_annotations — record them directly.
        if requires is not None:
            cls.requires_methods.setdefault(t.text, requires)
        if no_analysis:
            cls.no_analysis_methods.add(t.text)
        end = _match_forward(code, j, "{", "}")
        self.methods.append(MethodDef(
            cls=cls.name,
            name=t.text,
            line=t.line,
            body=code[j:end],
            no_analysis=no_analysis,
            is_special=is_special,
            is_noexcept=is_noexcept))
        return end

    def _try_free_function(self, i: int) -> int | None:
        """Parses a namespace-scope free-function definition
        `name(params) quals { body }` at i (the function name).  Returns
        the index past the body, else None."""
        code = self.code
        n = len(code)
        t = code[i]
        if t.kind != IDENT or t.text in _KEYWORDS or t.text.isupper():
            return None
        if i + 1 >= n or code[i + 1].text != "(":
            return None
        prev = code[i - 1] if i > 0 else None
        if prev is not None and prev.text in (".", "->", "::", "=", "(",
                                              ",", "~"):
            return None
        if any(s.text in ("=", "(") for s in self._stmt):
            return None
        j = _match_forward(code, i + 1, "(", ")")
        quals = self._scan_qualifiers(j)
        if quals is None:
            return None
        j, no_analysis, is_noexcept, _requires = quals
        if code[j].text != "{":
            return None  # declaration / prototype
        end = _match_forward(code, j, "{", "}")
        self.exported.setdefault(t.text, t.line)
        self.methods.append(MethodDef(
            cls="",
            name=t.text,
            line=t.line,
            body=code[j:end],
            no_analysis=no_analysis,
            is_noexcept=is_noexcept))
        return end

    # -- namespace-scope free declarations ---------------------------------

    def _note_namespace_decl(self, i: int) -> None:
        """Exports free functions / aliases / constants declared at i."""
        code = self.code
        t = code[i]
        if t.kind != IDENT or t.text in _KEYWORDS:
            return
        prev = code[i - 1] if i > 0 else None
        nxt = code[i + 1] if i + 1 < len(code) else None
        if nxt is None:
            return
        # using Name = ...;
        if prev is not None and prev.text == "using" and nxt.text == "=":
            self.exported.setdefault(t.text, t.line)
            return
        if prev is not None and prev.text in (".", "->", "::"):
            return
        # Function declaration/definition: name immediately before '('.
        # ALL_CAPS names before '(' are macro invocations (x-macro style),
        # not declarations.
        if nxt.text == "(":
            if not t.text.isupper():
                self.exported.setdefault(t.text, t.line)
            return
        # Variable/constant: name before '=', '{', '[' or ';' at decl end.
        if nxt.text in ("=", "[", ";", "{") and prev is not None and \
                (prev.kind == IDENT or prev.text in ("&", "*", ">")):
            self.exported.setdefault(t.text, t.line)

    # -- driver ------------------------------------------------------------

    def walk(self) -> None:
        code = self.code
        i, n = 0, len(code)
        while i < n:
            t = code[i]
            if t.text == "namespace" and self.at_namespace_scope():
                self._stmt = []
                j = i + 1
                while j < n and (code[j].kind == IDENT or
                                 code[j].text == "::"):
                    j += 1
                if j < n and code[j].text == "{":
                    self.scopes.append(("namespace", None))
                    i = j + 1
                    continue
                # namespace alias or `using namespace`: skip statement.
                while j < n and code[j].text != ";":
                    j += 1
                i = j + 1
                continue
            if t.text == "enum":
                body = self._enum_head(i)
                if body is not None:
                    self._stmt = []
                    i = _match_forward(code, body, "{", "}")
                    continue
            if t.text in ("class", "struct") and \
                    (self.at_namespace_scope() or self.current_class()):
                head = self._class_head(i)
                if head is not None:
                    self._stmt = []
                    body_start, cls = head
                    self.scopes.append(("class", cls))
                    i = body_start + 1
                    continue
                # fall through: forward declaration etc.
            if t.text == "using" and self.at_namespace_scope():
                # `using X = ...;` exports X; either way skip to the ';'
                # so alias right-hand sides (`unsigned __int128`) and
                # using-declarations never look like declarations.
                self._stmt = []
                if (i + 2 < n and code[i + 1].kind == IDENT and
                        code[i + 2].text == "="):
                    self.exported.setdefault(code[i + 1].text,
                                             code[i + 1].line)
                j = i + 1
                while j < n and code[j].text != ";":
                    j += 1
                i = j + 1
                continue
            if t.text == "{":
                # A `{` after `)` opens a function body (no declaration to
                # keep); after a declarator it is a brace initializer and
                # the statement continues past the matching `}`.
                if self._stmt and self._stmt[-1].text == ")":
                    self._stmt = []
                self.scopes.append(("opaque", None))
                i += 1
                continue
            if t.text == "}":
                if self.scopes:
                    kind, payload = self.scopes.pop()
                    if kind == "class" and payload is not None:
                        payload.end_line = t.line  # type: ignore[union-attr]
                        self._stmt = []
                i += 1
                continue

            cls = self.current_class()
            if cls is not None and t.kind == IDENT:
                self._note_class_annotations(cls, i)
                end = self._try_inline_method(i, cls)
                if end is not None:
                    self._stmt = []
                    i = end
                    continue
            in_decl_scope = cls is not None or self.at_namespace_scope()
            if self.at_namespace_scope():
                end = self._try_method_def(i)
                if end is not None:
                    self._stmt = []
                    i = end
                    continue
                end = self._try_free_function(i)
                if end is not None:
                    self._stmt = []
                    i = end
                    continue
                self._note_namespace_decl(i)
                # Parameter lists / initializer calls hold no namespace-scope
                # declarations; skipping them keeps default-argument names
                # out of the export table.  The `(` still lands in the
                # statement so _parse_decl rejects function-shaped decls.
                if t.text == "(":
                    self._stmt.append(t)
                    i = _match_forward(code, i, "(", ")")
                    continue
            if in_decl_scope:
                if t.text == ";":
                    self._flush_stmt()
                elif t.text == ":" and len(self._stmt) == 1 and \
                        self._stmt[0].text in ("public", "private",
                                               "protected"):
                    self._stmt = []  # access specifier, not a declaration
                else:
                    self._stmt.append(t)
            i += 1


_ANALYZE_HEAD_RE = re.compile(r"analyze:\s*(.*)", re.S)
_ANALYZE_ITEM_RE = re.compile(r"\s*([A-Za-z_][\w-]*)(\s*\(([^)]*)\))?")


def _parse_annotation_items(text: str) -> list[tuple[str, str]]:
    """Parses the item run after `analyze:` — consecutive `kind` or
    `kind(value)` items.  A chunk that is not item-shaped is kept as a
    bare (chunk, "") item so the annotations pass can reject it instead
    of a typo silently suppressing a report."""
    items: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _ANALYZE_ITEM_RE.match(text, pos)
        if m is not None and m.end() > pos and m.group(1):
            items.append((m.group(1), (m.group(3) or "").strip()))
            pos = m.end()
            continue
        rest = text[pos:].lstrip()
        if not rest:
            break
        chunk = rest.split()[0]
        items.append((chunk, ""))
        pos = text.index(chunk, pos) + len(chunk)
    return items


def analyze_annotations(tokens: list[Token]) -> dict[int, list[tuple[str, str]]]:
    """Parses `// analyze: kind(value)` expectation comments.

    Returns comment line -> [(kind, value)].  A trailing comment annotates
    the declaration on its own line; passes look the annotation up by the
    declaration's line number.  Several annotations may share one comment
    (`// analyze: atomic(publish) escape(spsc-owner)`), a value-free kind
    is written bare (`// analyze: hotpath`), and free prose is allowed
    after a ` -- ` separator:
    `// analyze: hotpath-allow(may-block) -- uncontended handoff lock`.
    """
    out: dict[int, list[tuple[str, str]]] = {}
    for t in tokens:
        if t.kind != COMMENT:
            continue
        m = _ANALYZE_HEAD_RE.search(t.text)
        if m is None:
            continue
        run = m.group(1).split("--", 1)[0]
        # A comment token may span lines (/* */); items keep the head line.
        items = _parse_annotation_items(run.rstrip("*/ \t\n"))
        if items:
            out.setdefault(t.line, []).extend(items)
    return out


def build_model(path: str, text: str) -> FileModel:
    tokens = tokenize(text)
    code = code_tokens(tokens)
    walker = _ScopeWalker(path, code)
    walker.walk()
    macros = parse_macros(tokens)
    provided = dict(walker.exported)
    for name, line in walker.nested.items():
        provided.setdefault(name, line)
    for m, line in macros.items():
        provided.setdefault(m, line)
    for enum in walker.enums:
        for e in enum.enumerators:
            provided.setdefault(e, enum.line)
    type_spans: dict[str, tuple[int, int]] = {}
    for cls in walker.classes:
        type_spans.setdefault(cls.name, (cls.line, cls.end_line or cls.line))
    for enum in walker.enums:
        type_spans.setdefault(enum.name,
                              (enum.line, enum.end_line or enum.line))
    return FileModel(
        path=path,
        tokens=tokens,
        code=code,
        includes=parse_includes(tokens),
        macros=macros,
        enums=walker.enums,
        classes=walker.classes,
        methods=walker.methods,
        exported=walker.exported,
        nested=walker.nested,
        type_spans=type_spans,
        provided=provided,
        globals_=walker.globals_,
        global_lines=walker.global_lines,
        annotations=analyze_annotations(tokens),
    )


def identifier_uses(model: FileModel) -> set[str]:
    """Every identifier the file mentions (code + macro bodies)."""
    uses = {t.text for t in model.code if t.kind == IDENT}
    for t in model.tokens:
        if t.kind == PP and not t.text.lstrip("# ").startswith("include"):
            uses.update(_WORD_RE.findall(t.text))
    return uses


_DEFINE_BODY_RE = re.compile(
    r"#\s*define\s+[A-Za-z_]\w*(?:\([^)]*\))?(.*)", re.S)


def macro_body_idents(model: FileModel) -> dict[str, set[str]]:
    """Macro name -> identifiers appearing in its replacement text.

    Feeds the dead-code liveness fixpoint: a symbol referenced from the
    body of a live macro is reachable wherever that macro is expanded,
    even though no ordinary code token names it.
    """
    out: dict[str, set[str]] = {}
    for t in model.tokens:
        if t.kind != PP:
            continue
        name_m = _DEFINE_RE.match(t.text)
        if not name_m:
            continue
        body_m = _DEFINE_BODY_RE.match(t.text)
        body = body_m.group(1) if body_m else ""
        out.setdefault(name_m.group(1), set()).update(
            _WORD_RE.findall(body))
    return out
