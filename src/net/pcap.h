// Classic libpcap file format reader/writer, implemented from scratch.
//
// The paper's delay experiments run on a gateway trace from the UMASS
// repository; we cannot redistribute it, so synthetic traces round-trip
// through the standard pcap container instead: write with PcapWriter, read
// back with PcapReader (or into any other pcap-consuming tool).  Frames are
// Ethernet II / IPv4 / {TCP, UDP}; the IPv4 header checksum is computed on
// write and verified on read.
#ifndef IUSTITIA_NET_PCAP_H_
#define IUSTITIA_NET_PCAP_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace iustitia::net {

// Serializes one packet to an Ethernet/IPv4/TCP-or-UDP frame.
std::vector<std::uint8_t> encode_frame(const Packet& packet);

// Parses a frame produced by encode_frame (or any Ethernet/IPv4/TCP|UDP
// frame).  IPv6 frames are also accepted: their 128-bit addresses are
// folded to the 32-bit FlowKey fields with a 64-bit mix (flows remain
// distinct with overwhelming probability; addresses are not recoverable).
// Returns std::nullopt for non-IP or non-TCP/UDP frames; throws
// std::runtime_error on structurally corrupt frames (bad lengths or a bad
// IPv4 header checksum).
std::optional<Packet> decode_frame(std::span<const std::uint8_t> frame,
                                   double timestamp);

// Streaming pcap writer.
class PcapWriter {
 public:
  // Writes the global header immediately.  The stream must outlive the
  // writer.
  explicit PcapWriter(std::ostream& os, std::uint32_t snaplen = 65535);

  // Appends one packet record.
  void write(const Packet& packet);

  std::size_t packets_written() const noexcept { return packets_written_; }

 private:
  std::ostream& os_;
  std::size_t packets_written_ = 0;
};

// Streaming pcap reader.
class PcapReader {
 public:
  // Hard upper bound on one record's captured length, whatever the
  // file's snaplen field claims.  A hostile capture can put any 32-bit
  // value in a record header; without this clamp `incl_len` is an
  // attacker-controlled allocation of up to 4 GiB per record.
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 20;  // 1 MiB

  // Reads and validates the global header.  Throws std::runtime_error on a
  // bad magic or unsupported link type.  The header's snaplen (clamped
  // to kMaxRecordBytes, defaulted when absurd) bounds every record.
  explicit PcapReader(std::istream& is);

  // Next decodable packet, skipping frames decode_frame rejects; or
  // std::nullopt at end of file.  A capture cut off mid-record (the
  // normal fate of a live capture that was interrupted) ends the stream
  // cleanly at the last complete record and sets truncated() instead of
  // throwing — only structurally corrupt *complete* frames and records
  // whose claimed length exceeds the snaplen bound still throw.
  std::optional<Packet> next();

  std::size_t packets_read() const noexcept { return packets_read_; }

  // True once next() hit a final record whose header or body was cut off.
  bool truncated() const noexcept { return truncated_; }

 private:
  std::istream& is_;
  std::size_t packets_read_ = 0;
  bool truncated_ = false;
  std::uint32_t snaplen_ = kMaxRecordBytes;  // per-record length bound
};

}  // namespace iustitia::net

#endif  // IUSTITIA_NET_PCAP_H_
