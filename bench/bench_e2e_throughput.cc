// End-to-end throughput bench for the batched hot path: corpus -> model
// -> synthetic replay through the full online runtime (dispatcher ->
// SPSC rings -> shard workers -> output queues), swept across shard
// counts x burst sizes.
//
// burst = 1 is the exact single-item path (one ring head/tail round-trip
// per packet, per-packet metrics and guard scopes) — i.e. the pre-burst
// runtime — so each shard count's speedup_vs_single column IS the
// measured win of the burst protocol over the unbatched path on this
// machine, end to end rather than in a ring microbench.  Results go to
// stdout and machine-readable JSON (argv[1], default
// BENCH_e2e_throughput.json); tools/ci.sh runs a reduced form and gates
// speedup_vs_single against bench/baselines/e2e_throughput.json via
// tools/perf_check.py.
//
// Knobs: IUSTITIA_TRACE_PACKETS  synthetic trace packet budget
//                                (default 200000; CI smoke uses 25000).
//        IUSTITIA_E2E_REPS       repetitions per configuration; the
//                                best rep is reported (default 3).
//                                Best-of-N is the right estimator on a
//                                shared host: slowdowns are scheduler
//                                noise, the max approaches the
//                                machine's actual capability.
#include <algorithm>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "appproto/trace_headers.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "entropy/entropy_vector.h"
#include "net/trace_gen.h"
#include "runtime/runtime.h"
#include "util/timer.h"

namespace iustitia::bench {
namespace {

struct E2eRow {
  std::size_t shards = 0;
  std::size_t burst = 0;
  double seconds = 0.0;
  double pkts_per_sec = 0.0;
  // Versus the burst = 1 row of the SAME shard count.
  double speedup_vs_single = 0.0;
  double mean_burst = 0.0;  // packets per successful ring burst push
  std::uint64_t flushes = 0;
  std::uint64_t flows_classified = 0;
  std::uint64_t dropped = 0;
};

// One training pass for the whole sweep: every run (and every shard)
// classifies with a copy of the same model, so rows differ only in the
// transport configuration under test.
std::function<core::FlowNatureModel()> model_factory() {
  const auto corpus = standard_corpus(40);
  core::TrainerOptions options;
  options.backend = core::Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = core::TrainingMethod::kFirstBytes;
  options.buffer_size = 32;
  core::FlowNatureModel model = core::train_model(corpus, options);
  return [model] { return model; };
}

void write_json(const std::string& path, const std::vector<E2eRow>& rows,
                std::size_t packets) {
  std::ofstream out(path);
  out << std::setprecision(12);
  out << "{\n  \"bench\": \"e2e_throughput\",\n  \"trace_packets\": "
      << packets << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const E2eRow& r = rows[i];
    out << "    {\"shards\": " << r.shards << ", \"burst\": " << r.burst
        << ", \"pkts_per_sec\": " << r.pkts_per_sec
        << ", \"speedup_vs_single\": " << r.speedup_vs_single
        << ", \"mean_burst\": " << r.mean_burst
        << ", \"flushes\": " << r.flushes
        << ", \"flows_classified\": " << r.flows_classified
        << ", \"dropped\": " << r.dropped << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  banner("End-to-end batched-hot-path throughput: shards x burst sweep",
         "context: burst=1 is the exact single-item (pre-burst) path, so "
         "speedup_vs_single is the burst protocol's end-to-end win");

  const std::size_t packets = env_size("IUSTITIA_TRACE_PACKETS", 200000);
  const std::size_t reps = std::max<std::size_t>(
      1, env_size("IUSTITIA_E2E_REPS", 3));
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_e2e_throughput.json";
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = packets;
  trace_options.seed = 0x78A;
  const std::size_t trace_size =
      net::generate_trace(trace_options).packets.size();
  std::cout << "trace: " << trace_size << " packets; hardware threads: "
            << hw << "\n\n";

  const auto factory = model_factory();
  std::vector<E2eRow> rows;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t burst :
         {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
      E2eRow row;
      row.shards = shards;
      row.burst = burst;
      rows.push_back(row);
    }
  }

  // Repetitions are interleaved round-robin across configurations (rep
  // 0 of every row, then rep 1 of every row, ...) rather than run
  // back-to-back per row: shared-host noise arrives in waves lasting
  // whole seconds, so consecutive reps of one row are correlated — a
  // wave parked on one configuration would poison even its best-of-N
  // while leaving neighbours untouched.  Spreading the reps makes every
  // row sample every noise regime, which is what makes the RATIO
  // between rows trustworthy.
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (E2eRow& row : rows) {
      runtime::RuntimeOptions options;
      options.shards = row.shards;
      options.burst = row.burst;
      options.backpressure =
          runtime::BackpressurePolicy::kBlock;  // lossless
      options.latency_sample_every = 16;
      options.engine.buffer_size = 32;
      runtime::Runtime rt(factory, options);

      // Fresh trace per rep: a TraceSource is single-shot (packets are
      // moved out).  Same seed, so every configuration replays
      // identical input; generation is outside the timed window.
      runtime::TraceSource source(net::generate_trace(trace_options));

      const util::Stopwatch timer;
      rt.start(source);
      rt.wait();
      const double seconds = timer.elapsed_seconds();

      const runtime::MetricsSnapshot snap = rt.snapshot();
      const double pps = static_cast<double>(snap.packets_in) / seconds;
      rt.output_queues().drain_all();
      if (pps <= row.pkts_per_sec) continue;  // keep the best rep
      row.seconds = seconds;
      row.pkts_per_sec = pps;
      double mean_sum = 0.0;
      std::uint64_t mean_rings = 0;
      for (const auto& ring : snap.rings) {
        if (ring.flushes == 0) continue;
        mean_sum += ring.mean_burst();
        ++mean_rings;
      }
      row.mean_burst = mean_rings != 0 ? mean_sum / mean_rings : 1.0;
      row.flushes = snap.total_flushes();
      row.flows_classified = snap.flows_by_nature[0] +
                             snap.flows_by_nature[1] +
                             snap.flows_by_nature[2];
      row.dropped = snap.total_dropped();
    }
  }

  // speedup_vs_single: each row against the burst = 1 row of the SAME
  // shard count.
  for (E2eRow& row : rows) {
    for (const E2eRow& base : rows) {
      if (base.shards == row.shards && base.burst == 1) {
        row.speedup_vs_single = base.pkts_per_sec > 0.0
                                    ? row.pkts_per_sec / base.pkts_per_sec
                                    : 1.0;
        break;
      }
    }
  }

  util::Table table({"shards", "burst", "replay time", "packets/sec",
                     "vs single", "mean burst", "flows", "dropped"});
  for (const E2eRow& r : rows) {
    table.add_row({std::to_string(r.shards), std::to_string(r.burst),
                   util::fmt_seconds(r.seconds),
                   util::fmt(r.pkts_per_sec / 1e6, 2) + " M",
                   util::fmt(r.speedup_vs_single, 2) + "x",
                   util::fmt(r.mean_burst, 1),
                   std::to_string(r.flows_classified),
                   std::to_string(r.dropped)});
  }
  table.render(std::cout);
  std::cout << "\ncontext: blocking backpressure is lossless, so every "
               "configuration does identical classification work; the "
               "vs-single column isolates what batching the ring ops, "
               "guard scopes, and metrics buys over the per-packet "
               "path.\n";

  write_json(json_path, rows, trace_size);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main(int argc, char** argv) { return iustitia::bench::run(argc, argv); }
