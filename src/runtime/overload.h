// Overload shedding ladder for the serving runtime (DESIGN.md §12).
//
// The dispatcher feeds per-flush ring occupancy into an EWMA; the
// policy maps the smoothed occupancy onto an ordered ladder of shed
// stages, each strictly cheaper per packet than the one before:
//
//   0 normal            full configured feature budget
//   1 cap-buffer        per-flow buffered bytes capped at
//                       degraded_buffer_bytes (the paper's Fig. 4 cost
//                       curve is near-flat down to b=32 at c≈1, so
//                       degraded mode still classifies)
//   2 sample-admission  new flows admitted with probability
//                       admission_permille/1000 (existing flows keep
//                       classifying; sampled-out packets count as shed)
//   3 drop              dispatcher stops blocking on full rings and
//                       drops, regardless of the backpressure mode
//
// Entry thresholds are per stage; exit requires the EWMA to fall
// `hysteresis` below the stage's entry threshold so the ladder does not
// flap at a boundary.  Every entry/exit is counted in MetricsRegistry
// and exported via Prometheus.  The dispatcher is the only writer;
// workers and the health endpoint read the stage through one relaxed
// atomic.
#ifndef IUSTITIA_RUNTIME_OVERLOAD_H_
#define IUSTITIA_RUNTIME_OVERLOAD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/metrics.h"

namespace iustitia::runtime {

enum class ShedStage : int {
  kNormal = 0,
  kCapBuffer = 1,
  kSampleAdmission = 2,
  kDrop = 3,
};

// Stable lowercase name for logs, /readyz, and Prometheus labels.
const char* shed_stage_name(ShedStage stage) noexcept;

struct OverloadOptions {
  // Off by default: under blocking backpressure a full ring is the
  // normal flow-control state for a faster-than-real-time file replay,
  // and stalling the source is exactly what the operator asked for.
  // Enable the ladder (--overload) when the source is live/paced and
  // cannot be stalled, so sustained pressure should degrade service
  // instead of losing the race silently.
  bool enabled = false;
  // EWMA smoothing factor applied per dispatcher flush.
  double ewma_alpha = 0.2;
  // Occupancy fraction (mean ring depth / capacity) at which each stage
  // engages; must be non-decreasing along the ladder.
  double cap_buffer_enter = 0.50;
  double sample_admission_enter = 0.75;
  double drop_enter = 0.90;
  // A stage disengages when the EWMA falls this far below its entry
  // threshold.
  double hysteresis = 0.10;
  // Stage 1: per-flow byte budget while degraded (paper's b=32 point).
  std::size_t degraded_buffer_bytes = 32;
  // Stage 2: new-flow admission probability, in permille.
  std::uint32_t admission_permille = 250;
};

class OverloadPolicy {
 public:
  // `metrics` may be null (unit tests); transitions are then unreported.
  OverloadPolicy(const OverloadOptions& options, MetricsRegistry* metrics);

  // Dispatcher side, once per flush: fold the observed occupancy of one
  // ring into the EWMA and re-evaluate the stage.  Single writer.
  // analyze: hotpath
  void observe_occupancy(std::size_t depth, std::size_t capacity) noexcept;

  // Drops the ladder back to normal (counting exits) — called when the
  // dispatcher retires, since ring pressure is definitionally gone.
  void reset() noexcept;

  // Any thread: one relaxed load.
  ShedStage stage() const noexcept {
    return static_cast<ShedStage>(stage_.load(std::memory_order_relaxed));
  }

  double ewma() const noexcept {
    return ewma_.load(std::memory_order_relaxed);
  }

  const OverloadOptions& options() const noexcept { return options_; }

 private:
  double enter_threshold(int stage) const noexcept;
  void transition_to(int target) noexcept;

  const OverloadOptions options_;
  MetricsRegistry* const metrics_;
  // Both written only by the dispatcher; atomics because snapshot and
  // workers read them live.
  std::atomic<double> ewma_{0.0};  // analyze: atomic(relaxed-counter)
  std::atomic<int> stage_{0};      // analyze: atomic(relaxed-flag)
};

}  // namespace iustitia::runtime

#endif  // IUSTITIA_RUNTIME_OVERLOAD_H_
