#include "net/flow.h"

#include <array>
#include <span>

#include "util/hash.h"

namespace iustitia::net {

std::array<std::uint8_t, 13> canonical_header_bytes(
    const FlowKey& key) noexcept {
  std::array<std::uint8_t, 13> out{};
  auto put32 = [&](std::size_t at, std::uint32_t v) {
    out[at] = static_cast<std::uint8_t>(v >> 24);
    out[at + 1] = static_cast<std::uint8_t>(v >> 16);
    out[at + 2] = static_cast<std::uint8_t>(v >> 8);
    out[at + 3] = static_cast<std::uint8_t>(v);
  };
  put32(0, key.src_ip);
  put32(4, key.dst_ip);
  out[8] = static_cast<std::uint8_t>(key.src_port >> 8);
  out[9] = static_cast<std::uint8_t>(key.src_port);
  out[10] = static_cast<std::uint8_t>(key.dst_port >> 8);
  out[11] = static_cast<std::uint8_t>(key.dst_port);
  out[12] = static_cast<std::uint8_t>(key.protocol);
  return out;
}

FlowId flow_id(const FlowKey& key) noexcept {
  const auto bytes = canonical_header_bytes(key);
  return util::sha1(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

std::size_t FlowKeyHash::operator()(const FlowKey& key) const noexcept {
  std::uint64_t h = util::mix64((static_cast<std::uint64_t>(key.src_ip) << 32) |
                                key.dst_ip);
  h = util::hash_combine(
      h, (static_cast<std::uint64_t>(key.src_port) << 24) |
             (static_cast<std::uint64_t>(key.dst_port) << 8) |
             static_cast<std::uint64_t>(key.protocol));
  return static_cast<std::size_t>(h);
}

}  // namespace iustitia::net
