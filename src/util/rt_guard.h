// Runtime real-time-safety verifier behind the IUSTITIA_RT_DEBUG build
// option (CMake preset `rt-debug`) — the dynamic twin of the
// tools/analyze `hotpath` pass.
//
// A hot loop carrying the analyzer's hotpath annotation enters a
// GuardRegion for the span the static pass audits.  Inside a guard
// region, replacement operator new/delete (tests/alloc_hook.h,
// tools/rt_alloc_hook.cc) and util::Mutex::lock report to
// note_alloc()/note_block(); a hit bumps a process-wide violation
// counter in every build, and FATALs (fprintf + abort — the failure
// path must not itself allocate) when the binary was compiled with
// IUSTITIA_RT_DEBUG.  AllowScope mirrors a hotpath-allow annotation: a
// documented cold branch (first-touch growth, drop-path accounting)
// opens one on the same line as the annotation so the runtime
// relaxation never drifts from the static claim (the analyzer rejects
// either alone: hotpath-allow-undeclared).
//
// The guard state is thread-local: only the thread that entered the
// region is checked, so cold threads (setup, control plane) allocate
// freely while workers are being verified.
#ifndef IUSTITIA_UTIL_RT_GUARD_H_
#define IUSTITIA_UTIL_RT_GUARD_H_

#include <cstddef>

namespace iustitia::util::rt {

// Effect bits for AllowScope masks; named after the static effect
// lattice: kAlloc ↔ may-allocate, kBlock ↔ may-block.
inline constexpr unsigned kAlloc = 1u;
inline constexpr unsigned kBlock = 2u;

// Called by the replacement allocator on every operator new/delete.
// Counts (and under IUSTITIA_RT_DEBUG, FATALs on) calls made inside a
// guard region without an active kAlloc allowance.
void note_alloc(const char* what) noexcept;

// Called by util::Mutex::lock (IUSTITIA_RT_DEBUG builds only) before
// blocking; same contract with kBlock.
void note_block(const char* what) noexcept;

// True while the calling thread is inside a GuardRegion.
bool in_guard() noexcept;

// Process-wide count of guard violations (all threads, monotonic);
// live in every build so tests can assert on it without dying.
std::size_t violation_count() noexcept;
void reset_violation_count() noexcept;

// RAII: marks the calling thread's dynamic extent as a verified hot
// region.  Enter once around an annotated hot loop; nesting is fine.
class GuardRegion {
 public:
  GuardRegion() noexcept;
  ~GuardRegion();
  GuardRegion(const GuardRegion&) = delete;
  GuardRegion& operator=(const GuardRegion&) = delete;
};

// RAII: permits the masked effects for its lexical lifetime.  Pair it
// with the matching hotpath-allow annotation on the same line.
class AllowScope {
 public:
  explicit AllowScope(unsigned mask) noexcept;
  ~AllowScope();
  AllowScope(const AllowScope&) = delete;
  AllowScope& operator=(const AllowScope&) = delete;

 private:
  unsigned prev_;
};

}  // namespace iustitia::util::rt

#endif  // IUSTITIA_UTIL_RT_GUARD_H_
