// Tests for the overload shed ladder (runtime/overload.h) and the
// liveness watchdog (runtime/watchdog.h): EWMA stage transitions with
// hysteresis, metrics accounting of entries/exits, stall detection,
// recovery, and retirement.
#include "runtime/overload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

#include "runtime/metrics.h"
#include "runtime/watchdog.h"

namespace iustitia::runtime {
namespace {

OverloadOptions instant_options() {
  OverloadOptions options;
  options.enabled = true;
  options.ewma_alpha = 1.0;  // EWMA == instantaneous occupancy
  return options;
}

TEST(OverloadPolicy, DisabledPolicyNeverLeavesNormal) {
  OverloadOptions options;  // enabled = false by default
  OverloadPolicy policy(options, nullptr);
  for (int i = 0; i < 100; ++i) policy.observe_occupancy(100, 100);
  EXPECT_EQ(policy.stage(), ShedStage::kNormal);
  EXPECT_EQ(policy.ewma(), 0.0);
}

TEST(OverloadPolicy, LadderWalksUpThroughEveryStage) {
  OverloadPolicy policy(instant_options(), nullptr);
  policy.observe_occupancy(40, 100);
  EXPECT_EQ(policy.stage(), ShedStage::kNormal);
  policy.observe_occupancy(60, 100);  // >= 0.50
  EXPECT_EQ(policy.stage(), ShedStage::kCapBuffer);
  policy.observe_occupancy(80, 100);  // >= 0.75
  EXPECT_EQ(policy.stage(), ShedStage::kSampleAdmission);
  policy.observe_occupancy(95, 100);  // >= 0.90
  EXPECT_EQ(policy.stage(), ShedStage::kDrop);
}

TEST(OverloadPolicy, ASingleSpikeCanSkipStages) {
  OverloadPolicy policy(instant_options(), nullptr);
  policy.observe_occupancy(100, 100);
  EXPECT_EQ(policy.stage(), ShedStage::kDrop);
}

TEST(OverloadPolicy, ExitRequiresHysteresisBelowTheEntryThreshold) {
  OverloadPolicy policy(instant_options(), nullptr);
  policy.observe_occupancy(95, 100);
  ASSERT_EQ(policy.stage(), ShedStage::kDrop);
  // Just below drop_enter (0.90) but above 0.90 - hysteresis: no exit.
  policy.observe_occupancy(85, 100);
  EXPECT_EQ(policy.stage(), ShedStage::kDrop);
  // Below 0.80 -> leaves drop; still above sample-admission's exit.
  policy.observe_occupancy(79, 100);
  EXPECT_EQ(policy.stage(), ShedStage::kSampleAdmission);
  // Collapse of pressure walks all the way back down.
  policy.observe_occupancy(10, 100);
  EXPECT_EQ(policy.stage(), ShedStage::kNormal);
}

TEST(OverloadPolicy, TransitionsAreCountedPerStage) {
  MetricsRegistry metrics(1);
  OverloadPolicy policy(instant_options(), &metrics);
  policy.observe_occupancy(100, 100);  // 0 -> 3: enters 1, 2, 3
  policy.observe_occupancy(0, 100);    // 3 -> 0: exits 3, 2, 1
  const MetricsSnapshot snap = metrics.snapshot();
  for (std::size_t stage = 1; stage < kShedStageCount; ++stage) {
    EXPECT_EQ(snap.stage_entries[stage], 1u) << "stage " << stage;
    EXPECT_EQ(snap.stage_exits[stage], 1u) << "stage " << stage;
  }
}

TEST(OverloadPolicy, ResetDropsToNormalAndClearsTheEwma) {
  MetricsRegistry metrics(1);
  OverloadPolicy policy(instant_options(), &metrics);
  policy.observe_occupancy(100, 100);
  ASSERT_EQ(policy.stage(), ShedStage::kDrop);
  policy.reset();
  EXPECT_EQ(policy.stage(), ShedStage::kNormal);
  EXPECT_EQ(policy.ewma(), 0.0);
  EXPECT_EQ(metrics.snapshot().stage_exits[3], 1u);
}

TEST(OverloadPolicy, StageNamesAreStable) {
  EXPECT_STREQ(shed_stage_name(ShedStage::kNormal), "normal");
  EXPECT_STREQ(shed_stage_name(ShedStage::kCapBuffer), "cap-buffer");
  EXPECT_STREQ(shed_stage_name(ShedStage::kSampleAdmission),
               "sample-admission");
  EXPECT_STREQ(shed_stage_name(ShedStage::kDrop), "drop");
}

// ---------------------------------------------------------------- watchdog

// Polls until `done` holds or the deadline passes; sanitized builds run
// slowly, so the budget is generous — tests assert the outcome, not the
// latency.
bool poll_until(const std::function<bool()>& done,
                std::chrono::milliseconds budget =
                    std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

TEST(WatchdogTest, DisabledDeadlineNeverStartsTheWatcher) {
  WatchdogOptions options;
  options.deadline_ms = 0;
  Watchdog wd(2, options, nullptr);
  wd.start_watching();  // no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(wd.stalled_count(), 0u);
  EXPECT_FALSE(wd.any_stalled());
  wd.stop_watching();
}

TEST(WatchdogTest, DetectsAStallThenRecoversWhenTheBeatResumes) {
  WatchdogOptions options;
  options.deadline_ms = 50;
  MetricsRegistry metrics(2);
  Watchdog wd(2, options, &metrics);
  ASSERT_EQ(wd.thread_count(), 2u);
  wd.start_watching();
  // Thread 0 beats; thread 1 never does -> exactly one stall.
  EXPECT_TRUE(poll_until([&] {
    wd.heartbeat(0);
    return wd.stalled_count() == 1;
  }));
  EXPECT_TRUE(wd.any_stalled());
  EXPECT_GE(wd.stall_events(), 1u);
  EXPECT_GE(metrics.snapshot().watchdog_stalls, 1u);
  // Thread 1 resumes -> the stall clears (a latch, not a crash loop).
  EXPECT_TRUE(poll_until([&] {
    wd.heartbeat(0);
    wd.heartbeat(1);
    return wd.stalled_count() == 0;
  }));
  wd.retire(0);
  wd.retire(1);
  wd.stop_watching();
}

TEST(WatchdogTest, RetiredThreadsAreNotExpectedToBeat) {
  WatchdogOptions options;
  options.deadline_ms = 40;
  Watchdog wd(2, options, nullptr);
  wd.start_watching();
  wd.retire(0);
  wd.retire(1);
  // Neither thread ever beats, but both retired cleanly: no stall even
  // well past the deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(wd.stalled_count(), 0u);
  EXPECT_EQ(wd.stall_events(), 0u);
  wd.stop_watching();
}

TEST(WatchdogTest, StopIsIdempotentAndDestructorStops) {
  WatchdogOptions options;
  options.deadline_ms = 20;
  Watchdog wd(1, options, nullptr);
  wd.start_watching();
  wd.stop_watching();
  wd.stop_watching();
  // Destructor runs stop_watching() again on scope exit.
}

}  // namespace
}  // namespace iustitia::runtime
