// Prometheus text exposition (format 0.0.4) of a MetricsSnapshot.
//
// Pure rendering: takes the plain-value snapshot the runtime already
// produces and emits the standard `# HELP`/`# TYPE`/sample lines a
// Prometheus scraper (or curl) expects from GET /metrics.  Counter
// names follow the convention <namespace>_<subsystem>_<unit>_total;
// everything lives under the `iustitia_` namespace.
#ifndef IUSTITIA_CTRL_PROMETHEUS_H_
#define IUSTITIA_CTRL_PROMETHEUS_H_

#include <string>

#include "runtime/metrics.h"

namespace iustitia::ctrl {

// The full /metrics payload for one snapshot.
std::string render_prometheus(const runtime::MetricsSnapshot& snapshot);

// Escapes a label value per the exposition format (backslash, quote,
// newline).  Exposed for tests.
std::string prometheus_label_escape(const std::string& value);

}  // namespace iustitia::ctrl

#endif  // IUSTITIA_CTRL_PROMETHEUS_H_
