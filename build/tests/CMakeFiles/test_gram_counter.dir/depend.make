# Empty dependencies file for test_gram_counter.
# This may be replaced when dependencies are built.
