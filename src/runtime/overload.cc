#include "runtime/overload.h"

#include "util/check.h"

namespace iustitia::runtime {

// The metrics stage_entries/stage_exits arrays are indexed by ShedStage.
static_assert(static_cast<std::size_t>(ShedStage::kDrop) + 1 ==
                  kShedStageCount,
              "ShedStage stages and kShedStageCount must stay in sync");

const char* shed_stage_name(ShedStage stage) noexcept {
  switch (stage) {
    case ShedStage::kNormal:
      return "normal";
    case ShedStage::kCapBuffer:
      return "cap-buffer";
    case ShedStage::kSampleAdmission:
      return "sample-admission";
    case ShedStage::kDrop:
      return "drop";
  }
  return "unknown";
}

OverloadPolicy::OverloadPolicy(const OverloadOptions& options,
                               MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {
  CHECK_LE(options.cap_buffer_enter, options.sample_admission_enter)
      << "shed thresholds must be non-decreasing along the ladder";
  CHECK_LE(options.sample_admission_enter, options.drop_enter)
      << "shed thresholds must be non-decreasing along the ladder";
  CHECK_GT(options.ewma_alpha, 0.0);
  CHECK_LE(options.ewma_alpha, 1.0);
  CHECK_LE(options.admission_permille, 1000u);
}

double OverloadPolicy::enter_threshold(int stage) const noexcept {
  switch (static_cast<ShedStage>(stage)) {
    case ShedStage::kCapBuffer:
      return options_.cap_buffer_enter;
    case ShedStage::kSampleAdmission:
      return options_.sample_admission_enter;
    case ShedStage::kDrop:
      return options_.drop_enter;
    case ShedStage::kNormal:
      break;
  }
  return 0.0;
}

// Stage bookkeeping off the per-packet path: runs only on an actual
// transition, at most once per dispatcher flush.
void OverloadPolicy::transition_to(int target) noexcept {
  int current = stage_.load(std::memory_order_relaxed);
  while (current < target) {
    ++current;
    if (metrics_ != nullptr) {
      metrics_->on_stage_entered(static_cast<std::size_t>(current));
    }
  }
  while (current > target) {
    if (metrics_ != nullptr) {
      metrics_->on_stage_exited(static_cast<std::size_t>(current));
    }
    --current;
  }
  stage_.store(target, std::memory_order_relaxed);
}

// analyze: hotpath
void OverloadPolicy::observe_occupancy(std::size_t depth,
                                       std::size_t capacity) noexcept {
  if (!options_.enabled || capacity == 0) return;
  const double occupancy =
      static_cast<double>(depth) / static_cast<double>(capacity);
  const double ewma = options_.ewma_alpha * occupancy +
                      (1.0 - options_.ewma_alpha) *
                          ewma_.load(std::memory_order_relaxed);
  ewma_.store(ewma, std::memory_order_relaxed);

  int target = stage_.load(std::memory_order_relaxed);
  while (target < static_cast<int>(ShedStage::kDrop) &&
         ewma >= enter_threshold(target + 1)) {
    ++target;
  }
  while (target > 0 &&
         ewma < enter_threshold(target) - options_.hysteresis) {
    --target;
  }
  if (target != stage_.load(std::memory_order_relaxed)) {
    transition_to(target);
  }
}

void OverloadPolicy::reset() noexcept {
  transition_to(0);
  ewma_.store(0.0, std::memory_order_relaxed);
}

}  // namespace iustitia::runtime
