file(REMOVE_RECURSE
  "CMakeFiles/test_model_selection.dir/test_model_selection.cc.o"
  "CMakeFiles/test_model_selection.dir/test_model_selection.cc.o.d"
  "test_model_selection"
  "test_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
