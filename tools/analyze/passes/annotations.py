"""Annotation well-formedness audit.

`// analyze: kind(value)` expectation comments steer the atomics,
escape, and hotpath passes.  A misspelled kind or a bogus value used to
be silently inert — which means a typo could suppress a real report
(an `atomic(relaxd-counter)` never matches, an `escpae(...)` documents
nothing).  This pass rejects anything that is not a known kind with a
well-formed value:

  atomic(<protocol>)        protocol ∈ atomics.PROTOCOLS
  escape(<free text>)       non-empty rationale
  hotpath                   bare, no value
  hotpath-allow(<effects>)  non-empty comma list ⊆ callgraph.EFFECTS

Unparseable chunks after `analyze:` (prose without the ` -- `
separator, stray tokens) surface here too: the annotation grammar
keeps them as bare items precisely so this pass can flag them.
"""

from __future__ import annotations

import callgraph
from findings import Finding
from passes import atomics

_KNOWN = ("atomic", "escape", "hotpath", "hotpath-allow")


def _check(kind: str, value: str) -> str | None:
    """Error text for a malformed item, None when well-formed."""
    if kind not in _KNOWN:
        return (f"unknown annotation kind '{kind}' (known: "
                f"{', '.join(_KNOWN)}); prose belongs after ' -- '")
    if kind == "atomic":
        if value not in atomics.PROTOCOLS:
            return (f"atomic protocol '{value}' is not one of "
                    f"{', '.join(atomics.PROTOCOLS)}")
    elif kind == "escape":
        if not value:
            return "escape(...) needs a rationale for the shared access"
    elif kind == "hotpath":
        if value:
            return (f"hotpath takes no value (got '{value}'); cold-"
                    "branch suppressions are hotpath-allow(<effects>)")
    else:  # hotpath-allow
        effects = callgraph._allow_values(value)
        if not effects:
            return "hotpath-allow needs a non-empty effect list"
        bad = sorted(effects - set(callgraph.EFFECTS))
        if bad:
            return (f"hotpath-allow effect(s) {', '.join(bad)} not in "
                    f"{', '.join(callgraph.EFFECTS)}")
    return None


def run(ctx) -> list[Finding]:
    findings: list[Finding] = []
    for path, model in sorted(ctx.models.items()):
        for line in sorted(model.annotations):
            for kind, value in model.annotations[line]:
                err = _check(kind, value)
                if err is not None:
                    findings.append(Finding(
                        rule="annotation-unknown",
                        path=path, line=line,
                        message=f"malformed `// analyze:` annotation: "
                                f"{err}",
                        anchor=f"{kind}({value})"))
    return findings
