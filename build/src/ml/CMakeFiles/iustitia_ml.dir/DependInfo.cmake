
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cart.cc" "src/ml/CMakeFiles/iustitia_ml.dir/cart.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/cart.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/iustitia_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/iustitia_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/feature_selection.cc" "src/ml/CMakeFiles/iustitia_ml.dir/feature_selection.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/feature_selection.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/iustitia_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/model_selection.cc" "src/ml/CMakeFiles/iustitia_ml.dir/model_selection.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/model_selection.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/iustitia_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/iustitia_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/serialize.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/ml/CMakeFiles/iustitia_ml.dir/svm.cc.o" "gcc" "src/ml/CMakeFiles/iustitia_ml.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
