file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cdb.dir/bench_fig8_cdb.cc.o"
  "CMakeFiles/bench_fig8_cdb.dir/bench_fig8_cdb.cc.o.d"
  "bench_fig8_cdb"
  "bench_fig8_cdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
